//! Dynamic per-job execution state and the run-timeline arithmetic.
//!
//! Two models (§III-A):
//!
//! * **Rigid runs** alternate work segments of length τ with checkpoints of
//!   cost δ: `setup → τ work → δ ckpt → τ work → … → finish` (no checkpoint
//!   at the very end). On preemption the job keeps the work preserved by
//!   its last *completed* checkpoint; everything after it — including a
//!   checkpoint in progress — is lost, and the next run pays setup again.
//! * **Malleable runs** carry `remaining_ns` node-seconds of work executed
//!   at `cur_size` nodes per second after the setup window. Shrink/expand
//!   re-rate the run for free; preemption grants a two-minute drain during
//!   which no progress is made, and only the setup must be repeated.
//!
//! All arithmetic is integer (seconds / node-seconds), so runs are exact
//! and replay-deterministic.

use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_sim::{SimDuration, SimTime};
use hws_workload::{JobId, JobSpec};

/// Lifecycle of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Known only through its advance notice; not yet arrived.
    Announced,
    /// In the wait queue.
    Waiting,
    Running,
    /// Malleable job inside its two-minute preemption warning; nodes still
    /// held, no progress.
    Draining,
    Finished,
    Killed,
}

/// One execution attempt of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    pub start: SimTime,
    pub size: u32,
    /// End of the setup window (`start + setup`).
    pub setup_end: SimTime,
    /// Occupancy accounted up to this instant (node-time integration).
    pub occ_anchor: SimTime,
    /// Malleable only: work accounted up to this instant (≥ `setup_end`).
    pub work_anchor: SimTime,
    /// Rigid only: checkpoint interval (None → no checkpoints).
    pub tau: Option<SimDuration>,
    /// Rigid only: checkpoint cost.
    pub delta: SimDuration,
    /// Rigid only: remaining work at the start of this run.
    pub work_at_start: SimDuration,
}

/// Dynamic state of one job.
#[derive(Debug, Clone)]
pub struct JobState {
    pub id: JobId,
    /// Index into the trace's job vector.
    pub spec_idx: usize,
    pub status: Status,
    /// Rigid / on-demand: work not yet preserved by a checkpoint
    /// (at the requested size).
    pub remaining_work: SimDuration,
    /// Malleable: remaining useful node-seconds.
    pub remaining_ns: u64,
    /// Current allocation size (== spec size for rigid/on-demand).
    pub cur_size: u32,
    /// Nodes this running malleable job is owed back after shrinks.
    pub owed_expansion: u32,
    pub preempt_count: u32,
    pub run: Option<Run>,
    /// Monotone counter invalidating stale Finish/Kill/Drain events.
    pub epoch: u64,
    /// Draining (two-minute warning): nodes release at this instant.
    pub drain_until: Option<SimTime>,
    /// On-demand job this drain's nodes are promised to.
    pub drain_claim: Option<(JobId, u32)>,
}

impl JobState {
    pub fn new(id: JobId, spec_idx: usize, spec: &JobSpec) -> Self {
        JobState {
            id,
            spec_idx,
            status: Status::Announced,
            remaining_work: spec.work,
            remaining_ns: spec.work_node_seconds(),
            cur_size: spec.size,
            owed_expansion: 0,
            preempt_count: 0,
            run: None,
            epoch: 0,
            drain_until: None,
            drain_claim: None,
        }
    }

    pub fn is_running(&self) -> bool {
        self.status == Status::Running
    }

    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Append the dynamic state to a snapshot buffer (every field,
    /// including the run record and drain bookkeeping).
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.id.0);
        w.put_len(self.spec_idx);
        w.put_u8(status_tag(self.status));
        w.put_u64(self.remaining_work.as_secs());
        w.put_u64(self.remaining_ns);
        w.put_u32(self.cur_size);
        w.put_u32(self.owed_expansion);
        w.put_u32(self.preempt_count);
        match &self.run {
            Some(run) => {
                w.put_u8(1);
                w.put_u64(run.start.as_secs());
                w.put_u32(run.size);
                w.put_u64(run.setup_end.as_secs());
                w.put_u64(run.occ_anchor.as_secs());
                w.put_u64(run.work_anchor.as_secs());
                w.put_opt_u64(run.tau.map(|d| d.as_secs()));
                w.put_u64(run.delta.as_secs());
                w.put_u64(run.work_at_start.as_secs());
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.epoch);
        w.put_opt_u64(self.drain_until.map(|t| t.as_secs()));
        match &self.drain_claim {
            Some((od, n)) => {
                w.put_u8(1);
                w.put_u64(od.0);
                w.put_u32(*n);
            }
            None => w.put_u8(0),
        }
    }

    /// Decode a state written by [`JobState::encode_snap`].
    ///
    /// # Errors
    ///
    /// Truncated input or invalid tags — never panics.
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<JobState, SnapError> {
        let id = JobId(r.get_u64()?);
        let spec_idx = r.get_len()?;
        let status = status_from_tag(r.get_u8()?).map_err(|b| r.err(b))?;
        let remaining_work = SimDuration::from_secs(r.get_u64()?);
        let remaining_ns = r.get_u64()?;
        let cur_size = r.get_u32()?;
        let owed_expansion = r.get_u32()?;
        let preempt_count = r.get_u32()?;
        let run = match r.get_u8()? {
            0 => None,
            1 => Some(Run {
                start: SimTime::from_secs(r.get_u64()?),
                size: r.get_u32()?,
                setup_end: SimTime::from_secs(r.get_u64()?),
                occ_anchor: SimTime::from_secs(r.get_u64()?),
                work_anchor: SimTime::from_secs(r.get_u64()?),
                tau: r.get_opt_u64()?.map(SimDuration::from_secs),
                delta: SimDuration::from_secs(r.get_u64()?),
                work_at_start: SimDuration::from_secs(r.get_u64()?),
            }),
            b => return Err(r.err(format!("bad run tag {b}"))),
        };
        if (status == Status::Running || status == Status::Draining) != run.is_some() {
            return Err(r.err(format!("status {status:?} inconsistent with run presence")));
        }
        let epoch = r.get_u64()?;
        let drain_until = r.get_opt_u64()?.map(SimTime::from_secs);
        let drain_claim = match r.get_u8()? {
            0 => None,
            1 => Some((JobId(r.get_u64()?), r.get_u32()?)),
            b => return Err(r.err(format!("bad drain-claim tag {b}"))),
        };
        Ok(JobState {
            id,
            spec_idx,
            status,
            remaining_work,
            remaining_ns,
            cur_size,
            owed_expansion,
            preempt_count,
            run,
            epoch,
            drain_until,
            drain_claim,
        })
    }
}

fn status_tag(s: Status) -> u8 {
    match s {
        Status::Announced => 0,
        Status::Waiting => 1,
        Status::Running => 2,
        Status::Draining => 3,
        Status::Finished => 4,
        Status::Killed => 5,
    }
}

fn status_from_tag(b: u8) -> Result<Status, String> {
    Ok(match b {
        0 => Status::Announced,
        1 => Status::Waiting,
        2 => Status::Running,
        3 => Status::Draining,
        4 => Status::Finished,
        5 => Status::Killed,
        b => return Err(format!("bad status tag {b}")),
    })
}

// ----------------------------------------------------------------------
// Rigid-run timeline arithmetic (pure functions).
// ----------------------------------------------------------------------

/// Wall time for a rigid run: `setup + work + n_ckpt·δ`, with a checkpoint
/// after every τ of work except at the very end.
pub fn rigid_wall_time(
    work: SimDuration,
    setup: SimDuration,
    tau: Option<SimDuration>,
    delta: SimDuration,
) -> SimDuration {
    let n = n_checkpoints(work, tau);
    setup + work + SimDuration::from_secs(n * delta.as_secs())
}

/// Checkpoints taken while executing `work` seconds of work:
/// `ceil(work/τ) − 1` (none at the very end).
pub fn n_checkpoints(work: SimDuration, tau: Option<SimDuration>) -> u64 {
    match tau {
        Some(t) if t.as_secs() > 0 && work.as_secs() > 0 => (work.as_secs() - 1) / t.as_secs(),
        _ => 0,
    }
}

/// Progress of a rigid run after `elapsed` wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RigidProgress {
    /// Work executed so far (checkpointed or not).
    pub work_done: SimDuration,
    /// Work preserved by the last completed checkpoint.
    pub checkpointed: SimDuration,
    pub completed_ckpts: u64,
    /// Wall offset (from run start) of the last preserved point — the run
    /// start itself when no checkpoint has completed. Preempting at
    /// `elapsed` wastes `elapsed − anchor_elapsed` wall seconds × size.
    pub anchor_elapsed: SimDuration,
}

/// Compute progress at `elapsed` wall seconds into a rigid run executing
/// `total_work` with setup `setup`, checkpoints every `tau` costing `delta`.
pub fn rigid_progress(
    elapsed: SimDuration,
    setup: SimDuration,
    tau: Option<SimDuration>,
    delta: SimDuration,
    total_work: SimDuration,
) -> RigidProgress {
    if elapsed <= setup {
        return RigidProgress {
            work_done: SimDuration::ZERO,
            checkpointed: SimDuration::ZERO,
            completed_ckpts: 0,
            anchor_elapsed: SimDuration::ZERO,
        };
    }
    let e = (elapsed - setup).as_secs();
    let total = total_work.as_secs();
    let (tau_s, delta_s) = match tau {
        Some(t) if t.as_secs() > 0 => (t.as_secs(), delta.as_secs()),
        _ => {
            // No checkpoints: all progress is volatile.
            return RigidProgress {
                work_done: SimDuration::from_secs(e.min(total)),
                checkpointed: SimDuration::ZERO,
                completed_ckpts: 0,
                anchor_elapsed: SimDuration::ZERO,
            };
        }
    };
    let max_ckpts = n_checkpoints(total_work, tau);
    let cycle = tau_s + delta_s;
    let k = e / cycle;
    let r = e % cycle;
    let work_done = (k * tau_s + r.min(tau_s)).min(total);
    let completed = k.min(max_ckpts);
    let checkpointed = completed * tau_s;
    let anchor = if completed == 0 {
        SimDuration::ZERO
    } else {
        setup + SimDuration::from_secs(completed * cycle)
    };
    RigidProgress {
        work_done: SimDuration::from_secs(work_done),
        checkpointed: SimDuration::from_secs(checkpointed),
        completed_ckpts: completed,
        anchor_elapsed: anchor,
    }
}

/// Wall instant (if any) at which the run's next checkpoint *completes*
/// after `now`. `None` when the job takes no further checkpoint before
/// finishing. Used by CUP to preempt rigid jobs "immediately after
/// checkpointing".
pub fn next_checkpoint_completion(run: &Run, now: SimTime) -> Option<SimTime> {
    let tau = run.tau?;
    if tau.as_secs() == 0 {
        return None;
    }
    let max_ckpts = n_checkpoints(run.work_at_start, Some(tau));
    if max_ckpts == 0 {
        return None;
    }
    let cycle = tau.as_secs() + run.delta.as_secs();
    let e = now.since(run.setup_end).as_secs();
    // Next cycle boundary strictly after `now`.
    let k_next = e / cycle + 1;
    if k_next > max_ckpts {
        return None;
    }
    Some(run.setup_end + SimDuration::from_secs(k_next * cycle))
}

// ----------------------------------------------------------------------
// Malleable-run arithmetic.
// ----------------------------------------------------------------------

/// Node-seconds of progress a malleable run makes between `run.work_anchor`
/// and `now` at its current size.
pub fn malleable_progress_ns(run: &Run, now: SimTime) -> u64 {
    let from = run.work_anchor.max(run.setup_end);
    now.since(from).as_secs() * u64::from(run.size)
}

/// Finish instant of a malleable run with `remaining_ns` outstanding at the
/// work anchor.
pub fn malleable_finish(run: &Run, remaining_ns: u64) -> SimTime {
    let from = run.work_anchor.max(run.setup_end);
    from + SimDuration::from_secs(remaining_ns.div_ceil(u64::from(run.size.max(1))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    // ---------------- rigid wall time ----------------

    #[test]
    fn wall_time_without_checkpoints() {
        assert_eq!(rigid_wall_time(d(1_000), d(100), None, d(600)), d(1_100));
    }

    #[test]
    fn wall_time_counts_interior_checkpoints_only() {
        // work 1000, τ 400 → checkpoints after 400 and 800 of work; the
        // boundary at 1200 never happens (job finishes at 1000).
        assert_eq!(n_checkpoints(d(1_000), Some(d(400))), 2);
        assert_eq!(
            rigid_wall_time(d(1_000), d(100), Some(d(400)), d(50)),
            d(100 + 1_000 + 2 * 50)
        );
        // Exact multiple: work 800, τ 400 → only one interior checkpoint.
        assert_eq!(n_checkpoints(d(800), Some(d(400))), 1);
    }

    #[test]
    fn no_checkpoint_when_work_fits_one_interval() {
        assert_eq!(n_checkpoints(d(400), Some(d(400))), 0);
        assert_eq!(n_checkpoints(d(399), Some(d(400))), 0);
        assert_eq!(n_checkpoints(d(401), Some(d(400))), 1);
    }

    // ---------------- rigid progress ----------------

    #[test]
    fn progress_during_setup_is_zero() {
        let p = rigid_progress(d(50), d(100), Some(d(400)), d(50), d(1_000));
        assert_eq!(p.work_done, d(0));
        assert_eq!(p.anchor_elapsed, d(0));
    }

    #[test]
    fn progress_mid_first_segment() {
        // elapsed 300 = setup 100 + 200 work; no checkpoint yet.
        let p = rigid_progress(d(300), d(100), Some(d(400)), d(50), d(1_000));
        assert_eq!(p.work_done, d(200));
        assert_eq!(p.checkpointed, d(0));
        assert_eq!(p.anchor_elapsed, d(0)); // preempting loses everything
    }

    #[test]
    fn progress_after_first_checkpoint() {
        // cycle = 450; elapsed 100 + 450 + 10 → one ckpt done, 10 s into
        // second segment.
        let p = rigid_progress(d(560), d(100), Some(d(400)), d(50), d(1_000));
        assert_eq!(p.completed_ckpts, 1);
        assert_eq!(p.checkpointed, d(400));
        assert_eq!(p.work_done, d(410));
        assert_eq!(p.anchor_elapsed, d(100 + 450));
    }

    #[test]
    fn progress_mid_checkpoint_does_not_count_it() {
        // elapsed = 100 + 400 + 20 → 20 s into the first checkpoint.
        let p = rigid_progress(d(520), d(100), Some(d(400)), d(50), d(1_000));
        assert_eq!(p.completed_ckpts, 0);
        assert_eq!(p.checkpointed, d(0));
        assert_eq!(p.work_done, d(400)); // work done but volatile
        assert_eq!(p.anchor_elapsed, d(0));
    }

    #[test]
    fn progress_caps_completed_ckpts_at_interior_count() {
        // work 800, τ 400 → 1 interior checkpoint. A long elapsed time
        // (e.g. waiting at the end) must not invent a second one.
        let p = rigid_progress(d(100 + 800 + 450), d(100), Some(d(400)), d(50), d(800));
        assert_eq!(p.completed_ckpts, 1);
        assert_eq!(p.checkpointed, d(400));
        assert_eq!(p.work_done, d(800));
    }

    #[test]
    fn progress_without_tau_is_volatile() {
        let p = rigid_progress(d(700), d(100), None, d(0), d(1_000));
        assert_eq!(p.work_done, d(600));
        assert_eq!(p.checkpointed, d(0));
    }

    // ---------------- next checkpoint completion ----------------

    fn rigid_run(start: u64, setup: u64, tau: u64, delta: u64, work: u64) -> Run {
        Run {
            start: t(start),
            size: 10,
            setup_end: t(start + setup),
            occ_anchor: t(start),
            work_anchor: t(start + setup),
            tau: Some(d(tau)),
            delta: d(delta),
            work_at_start: d(work),
        }
    }

    #[test]
    fn next_ckpt_completion_is_cycle_boundary() {
        let run = rigid_run(1_000, 100, 400, 50, 1_000);
        // At t = 1200 (100 s into work): first ckpt completes at
        // setup_end + 450 = 1550.
        assert_eq!(next_checkpoint_completion(&run, t(1_200)), Some(t(1_550)));
        // Immediately after that boundary the next one is 450 later.
        assert_eq!(next_checkpoint_completion(&run, t(1_550)), Some(t(2_000)));
    }

    #[test]
    fn next_ckpt_none_when_no_interior_ckpts_remain() {
        let run = rigid_run(0, 100, 400, 50, 1_000); // 2 interior ckpts
                                                     // After the second checkpoint boundary (100 + 2*450 = 1000) there
                                                     // are no more checkpoints.
        assert_eq!(next_checkpoint_completion(&run, t(1_000)), None);
    }

    #[test]
    fn next_ckpt_none_for_short_jobs() {
        let run = rigid_run(0, 100, 4_000, 50, 1_000);
        assert_eq!(next_checkpoint_completion(&run, t(0)), None);
    }

    // ---------------- malleable ----------------

    fn malleable_run(start: u64, setup: u64, size: u32) -> Run {
        Run {
            start: t(start),
            size,
            setup_end: t(start + setup),
            occ_anchor: t(start),
            work_anchor: t(start + setup),
            tau: None,
            delta: d(0),
            work_at_start: d(0),
        }
    }

    #[test]
    fn malleable_progress_after_setup() {
        let run = malleable_run(100, 50, 8);
        assert_eq!(malleable_progress_ns(&run, t(100)), 0);
        assert_eq!(malleable_progress_ns(&run, t(150)), 0); // setup end
        assert_eq!(malleable_progress_ns(&run, t(160)), 80); // 10 s × 8
    }

    #[test]
    fn malleable_finish_rounds_up() {
        let run = malleable_run(0, 10, 8);
        // 100 ns at 8 nodes/s → ceil(100/8) = 13 s after setup end.
        assert_eq!(malleable_finish(&run, 100), t(10 + 13));
        assert_eq!(malleable_finish(&run, 80), t(10 + 10));
    }

    #[test]
    fn job_state_construction() {
        use hws_workload::job::JobSpecBuilder;
        let spec = JobSpecBuilder::malleable(3)
            .size(100)
            .min_size(20)
            .work(d(1_000))
            .build();
        let st = JobState::new(JobId(3), 0, &spec);
        assert_eq!(st.status, Status::Announced);
        assert_eq!(st.remaining_ns, 100_000);
        assert_eq!(st.cur_size, 100);
        assert_eq!(st.epoch, 0);
    }

    #[test]
    fn epoch_bumps_monotonically() {
        use hws_workload::job::JobSpecBuilder;
        let spec = JobSpecBuilder::rigid(1).size(4).build();
        let mut st = JobState::new(JobId(1), 0, &spec);
        assert_eq!(st.bump_epoch(), 1);
        assert_eq!(st.bump_epoch(), 2);
    }
}
