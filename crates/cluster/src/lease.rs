//! Node leases (§III-B3 of the paper).
//!
//! When an on-demand job takes nodes from preempted or shrunk victims, each
//! taking is recorded as a [`Lease`]. On the on-demand job's completion the
//! ledger is drained **in recording order** and the nodes are offered back
//! to the lenders: a preempted lender that is still waiting accumulates them
//! as a private reservation (this is the source of the paper's Observation 2
//! starvation effect), a shrunk lender that is still running expands, and
//! anything else falls into the free pool.

use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_workload::JobId;
use std::collections::HashMap;

/// `nodes` nodes borrowed from `lender`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    pub lender: JobId,
    pub nodes: u32,
    /// True when the lender was preempted (vs shrunk) to supply the nodes.
    pub by_preemption: bool,
}

/// Per-borrower lease book.
#[derive(Debug, Clone, Default)]
pub struct LeaseLedger {
    leases: HashMap<JobId, Vec<Lease>>,
}

impl LeaseLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `borrower` took `nodes` nodes from `lender`.
    /// Consecutive records against the same lender merge.
    pub fn record(&mut self, borrower: JobId, lender: JobId, nodes: u32, by_preemption: bool) {
        if nodes == 0 {
            return;
        }
        let v = self.leases.entry(borrower).or_default();
        if let Some(last) = v.last_mut() {
            if last.lender == lender && last.by_preemption == by_preemption {
                last.nodes += nodes;
                return;
            }
        }
        v.push(Lease {
            lender,
            nodes,
            by_preemption,
        });
    }

    /// Total nodes `borrower` currently owes.
    pub fn owed_by(&self, borrower: JobId) -> u32 {
        self.leases
            .get(&borrower)
            .map_or(0, |v| v.iter().map(|l| l.nodes).sum())
    }

    /// Remove and return `borrower`'s leases in recording order.
    pub fn settle(&mut self, borrower: JobId) -> Vec<Lease> {
        self.leases.remove(&borrower).unwrap_or_default()
    }

    /// Drop any lease entries naming `lender` (used when a lender finishes
    /// or resumes on its own and no longer wants its nodes back).
    pub fn forget_lender(&mut self, lender: JobId) {
        for v in self.leases.values_mut() {
            v.retain(|l| l.lender != lender);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.leases.values().all(|v| v.is_empty())
    }

    /// Number of borrowers with outstanding leases.
    pub fn borrowers(&self) -> usize {
        self.leases.values().filter(|v| !v.is_empty()).count()
    }

    /// Serialize the ledger. Borrowers are written in sorted id order and
    /// empty lease lists (left behind by [`LeaseLedger::forget_lender`]) are
    /// skipped, so two semantically equal ledgers encode identically.
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        let mut borrowers: Vec<JobId> = self
            .leases
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(b, _)| *b)
            .collect();
        borrowers.sort();
        w.put_len(borrowers.len());
        for b in borrowers {
            w.put_u64(b.0);
            let v = &self.leases[&b];
            w.put_len(v.len());
            for l in v {
                w.put_u64(l.lender.0);
                w.put_u32(l.nodes);
                w.put_bool(l.by_preemption);
            }
        }
    }

    /// Decode a ledger written by [`LeaseLedger::encode_snap`].
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut leases: HashMap<JobId, Vec<Lease>> = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let b = r.get_u64()?;
            if prev.is_some_and(|p| p >= b) {
                return Err(r.err(format!("lease borrowers not strictly sorted at {b}")));
            }
            prev = Some(b);
            let k = r.get_len()?;
            if k == 0 {
                return Err(r.err(format!("empty lease list for borrower {b}")));
            }
            let mut v = Vec::with_capacity(k);
            for _ in 0..k {
                let lender = JobId(r.get_u64()?);
                let nodes = r.get_u32()?;
                if nodes == 0 {
                    return Err(r.err("zero-node lease"));
                }
                let by_preemption = r.get_bool()?;
                v.push(Lease {
                    lender,
                    nodes,
                    by_preemption,
                });
            }
            leases.insert(JobId(b), v);
        }
        Ok(LeaseLedger { leases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn record_and_settle_in_order() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(9), j(2), 2, false);
        assert_eq!(l.owed_by(j(9)), 6);
        let leases = l.settle(j(9));
        assert_eq!(leases.len(), 2);
        assert_eq!(leases[0].lender, j(1));
        assert!(leases[0].by_preemption);
        assert_eq!(leases[1].lender, j(2));
        assert!(!leases[1].by_preemption);
        assert_eq!(l.owed_by(j(9)), 0);
        assert!(l.is_empty());
    }

    #[test]
    fn consecutive_records_merge() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 2, true);
        l.record(j(9), j(1), 3, true);
        let leases = l.settle(j(9));
        assert_eq!(
            leases,
            vec![Lease {
                lender: j(1),
                nodes: 5,
                by_preemption: true
            }]
        );
    }

    #[test]
    fn different_modes_do_not_merge() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 2, true);
        l.record(j(9), j(1), 3, false);
        assert_eq!(l.settle(j(9)).len(), 2);
    }

    #[test]
    fn zero_node_record_is_ignored() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 0, true);
        assert!(l.is_empty());
    }

    #[test]
    fn forget_lender_removes_entries() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(9), j(2), 2, true);
        l.record(j(8), j(1), 1, false);
        l.forget_lender(j(1));
        assert_eq!(l.owed_by(j(9)), 2);
        assert_eq!(l.owed_by(j(8)), 0);
    }

    #[test]
    fn snap_codec_round_trips_and_skips_empty_entries() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(9), j(2), 2, false);
        l.record(j(8), j(1), 1, false);
        l.record(j(7), j(9), 3, true);
        l.forget_lender(j(9)); // leaves borrower 7 with an empty list
        let mut w = SnapWriter::new();
        l.encode_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = LeaseLedger::decode_snap(&mut r).expect("decodes");
        r.expect_end().expect("consumed exactly");
        assert_eq!(back.owed_by(j(9)), 6);
        assert_eq!(back.owed_by(j(8)), 1);
        assert_eq!(back.owed_by(j(7)), 0);
        assert_eq!(back.settle(j(9)), l.settle(j(9)));
        // Re-encoding the decoded ledger reproduces the bytes.
        let mut l2 = LeaseLedger::new();
        l2.record(j(9), j(1), 4, true);
        l2.record(j(9), j(2), 2, false);
        l2.record(j(8), j(1), 1, false);
        let mut w2 = SnapWriter::new();
        l2.encode_snap(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn snap_decode_rejects_corruption() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(8), j(2), 2, false);
        let mut w = SnapWriter::new();
        l.encode_snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                LeaseLedger::decode_snap(&mut r).is_err() || r.expect_end().is_err(),
                "truncation at {cut} must not decode cleanly"
            );
        }
        // Unsorted borrowers are rejected.
        let mut w = SnapWriter::new();
        w.put_len(2);
        for b in [9u64, 8] {
            w.put_u64(b);
            w.put_len(1);
            w.put_u64(1);
            w.put_u32(4);
            w.put_bool(true);
        }
        let bytes = w.into_bytes();
        assert!(LeaseLedger::decode_snap(&mut SnapReader::new(&bytes)).is_err());
    }

    #[test]
    fn borrowers_count() {
        let mut l = LeaseLedger::new();
        assert_eq!(l.borrowers(), 0);
        l.record(j(9), j(1), 1, true);
        l.record(j(8), j(2), 1, true);
        assert_eq!(l.borrowers(), 2);
        l.settle(j(9));
        assert_eq!(l.borrowers(), 1);
    }
}
