//! **Streaming archive replay** — the million-job baseline for the
//! O(active)-memory replay engine. For each archive profile the binary
//! generates (or reuses) the deterministic `theta_*` corpus per seed,
//! streams it off disk through [`SwfStreamSource`] with
//! [`Simulator::run_source`], and records throughput (jobs/s, events/s),
//! the simulator's own live-job high-water mark, and the process peak RSS.
//!
//! **Self-check:** on the quick profile, seed 0 of every mechanism is
//! additionally *materialized* (full archive import) and replayed with
//! [`Simulator::run_trace`]; metrics and engine counters must match the
//! streamed run bitwise — the same invariant the `streaming_equivalence`
//! proptests pin at unit scale, enforced here on the real corpus. Any
//! divergence exits non-zero, which is what CI keys on.
//!
//! Row fields split into deterministic simulation outputs (`jobs`,
//! `events`, `metrics_fingerprint`, `peak_resident_jobs` — gated by
//! `baseline_parity`) and wall-clock measurements (`*_per_sec`,
//! `peak_rss_mb` — machine-dependent, not gated).
//!
//! Writes `BENCH_archive_replay.json` at the workspace root (override
//! with `HWS_ARCHIVE_REPLAY_JSON=path`). The committed baseline is
//! recorded at `HWS_SCALE=full` (quick + full profiles) with 2 seeds:
//!
//! ```text
//! HWS_SCALE=full HWS_SEEDS=2 cargo run --release -p hws-bench --bin archive_replay
//! ```

use hws_bench::{
    ensure_archive, metrics_fingerprint, peak_rss_bytes, reset_peak_rss, seeds_from_env_or,
    ArchiveProfile, Scale,
};
use hws_core::{Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::Table;
use hws_workload::{import_swf_reader, SwfImportConfig, SwfStreamSource};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Row {
    profile: &'static str,
    mechanism: Mechanism,
    /// Jobs admitted per seed (identical across seeds of a profile).
    jobs: u64,
    seeds: u64,
    /// Delivered simulator events, summed over seeds.
    events: u64,
    /// FNV-1a over the per-seed metrics (see `metrics_fingerprint`).
    metrics_fingerprint: u64,
    /// Max over seeds of the job arena's live high-water mark — the
    /// O(active) claim as a committed, regression-gated number.
    peak_resident_jobs: usize,
    wall_s: f64,
    jobs_per_sec: f64,
    events_per_sec: f64,
    /// Max over seeds of the per-run peak RSS delta watermark.
    peak_rss_mb: f64,
}

/// Stream every seed of `(profile, mechanism)` and aggregate one row.
fn run_cell(
    profile: ArchiveProfile,
    m: Mechanism,
    archives: &[PathBuf],
    self_check: Option<&[SimOutcome]>,
) -> Row {
    let mut cfg = SimConfig::with_mechanism(m);
    // Wall-clock decision latencies are the one non-simulated metric; drop
    // them so the streamed outcome is a pure function of the archive.
    cfg.measure_decisions = false;

    let mut outcomes = Vec::with_capacity(archives.len());
    let mut wall_s = 0.0;
    let mut peak_rss_mb = 0.0f64;
    for path in archives {
        reset_peak_rss();
        let t0 = Instant::now();
        let source = SwfStreamSource::open(path)
            .unwrap_or_else(|e| panic!("open archive {}: {e}", path.display()));
        let outcome = Simulator::run_source(&cfg, source);
        wall_s += t0.elapsed().as_secs_f64();
        if let Some(rss) = peak_rss_bytes() {
            peak_rss_mb = peak_rss_mb.max(rss as f64 / (1024.0 * 1024.0));
        }
        outcomes.push(outcome);
    }

    if let Some(materialized) = self_check {
        let streamed = &outcomes[0];
        let reference = &materialized[0];
        assert_eq!(
            reference.metrics,
            streamed.metrics,
            "{}: streamed replay diverged from materialized import",
            m.name()
        );
        assert_eq!(
            reference.engine,
            streamed.engine,
            "{}: engine counters diverged from materialized import",
            m.name()
        );
        assert_eq!(reference.classes, streamed.classes);
    }

    let jobs = outcomes[0].admitted_jobs;
    assert!(
        outcomes.iter().all(|o| o.admitted_jobs == jobs),
        "seeds of one profile must admit the same job count"
    );
    let events: u64 = outcomes.iter().map(|o| o.engine.delivered).sum();
    Row {
        profile: profile.name(),
        mechanism: m,
        jobs,
        seeds: archives.len() as u64,
        events,
        metrics_fingerprint: metrics_fingerprint(&outcomes),
        peak_resident_jobs: outcomes.iter().map(|o| o.peak_resident_jobs).max().unwrap(),
        wall_s,
        jobs_per_sec: (jobs * archives.len() as u64) as f64 / wall_s,
        events_per_sec: events as f64 / wall_s,
        peak_rss_mb,
    }
}

fn main() {
    let seeds = seeds_from_env_or(2);
    let scale = Scale::from_env();
    let mut rows: Vec<Row> = Vec::new();

    for &profile in ArchiveProfile::for_scale(scale) {
        let archives: Vec<PathBuf> = (0..seeds)
            .map(|s| {
                let t0 = Instant::now();
                let path = ensure_archive(profile, s);
                let secs = t0.elapsed().as_secs_f64();
                if secs > 0.01 {
                    eprintln!("  generated {} in {secs:.1}s", path.display());
                }
                path
            })
            .collect();
        eprintln!(
            "archive_replay: theta_{} x {seeds} seeds ({})",
            profile.name(),
            archives[0].display()
        );

        // Materialized reference for the quick-profile self-check: one
        // full import of seed 0, replayed per mechanism with `run_trace`.
        // (Materializing the million-job profile is exactly what this
        // engine exists to avoid, so the cross-check runs at quick scale.)
        let reference = (profile == ArchiveProfile::Quick).then(|| {
            let file = std::fs::File::open(&archives[0])
                .unwrap_or_else(|e| panic!("open {}: {e}", archives[0].display()));
            import_swf_reader(std::io::BufReader::new(file), &SwfImportConfig::default())
                .unwrap_or_else(|e| panic!("import {}: {e}", archives[0].display()))
        });

        for m in Mechanism::ALL_SIX {
            let self_check = reference.as_ref().map(|trace| {
                let mut cfg = SimConfig::with_mechanism(m);
                cfg.measure_decisions = false;
                vec![Simulator::run_trace(&cfg, trace)]
            });
            let row = run_cell(profile, m, &archives, self_check.as_deref());
            eprintln!(
                "  {:<8} {:>9.0} jobs/s  {:>9.0} events/s  peak {} resident jobs, {:.0} MiB RSS{}",
                m.name(),
                row.jobs_per_sec,
                row.events_per_sec,
                row.peak_resident_jobs,
                row.peak_rss_mb,
                if self_check.is_some() {
                    "  parity OK"
                } else {
                    ""
                }
            );
            rows.push(row);
        }
    }

    let mut t = Table::new(vec![
        "profile",
        "mechanism",
        "jobs",
        "jobs/s",
        "events/s",
        "peak jobs",
        "RSS MiB",
        "fingerprint",
    ]);
    for r in &rows {
        t.row(vec![
            r.profile.to_string(),
            r.mechanism.name().to_string(),
            r.jobs.to_string(),
            format!("{:.0}", r.jobs_per_sec),
            format!("{:.0}", r.events_per_sec),
            r.peak_resident_jobs.to_string(),
            format!("{:.0}", r.peak_rss_mb),
            format!("{:016x}", r.metrics_fingerprint),
        ]);
    }
    println!(
        "STREAMING ARCHIVE REPLAY (scale {scale:?}, {seeds} seeds, quick profile parity-checked)"
    );
    println!("{}", t.render());

    let json_path = std::env::var("HWS_ARCHIVE_REPLAY_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    match std::fs::write(&json_path, rows_to_json(&rows)) {
        Ok(()) => println!("wrote {} rows to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, next to the other committed baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_archive_replay.json")
}

fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"profile\": \"{}\", \"mechanism\": \"{}\", \"jobs\": {}, \"seeds\": {}, \
             \"events\": {}, \"metrics_fingerprint\": \"{:016x}\", \"peak_resident_jobs\": {}, \
             \"wall_s\": {:.4}, \"jobs_per_sec\": {:.1}, \"events_per_sec\": {:.0}, \
             \"peak_rss_mb\": {:.1}}}{comma}",
            r.profile,
            r.mechanism.name(),
            r.jobs,
            r.seeds,
            r.events,
            r.metrics_fingerprint,
            r.peak_resident_jobs,
            r.wall_s,
            r.jobs_per_sec,
            r.events_per_sec,
            r.peak_rss_mb,
        );
    }
    out.push_str("]\n");
    out
}
