//! Offline stand-in for the crates.io `proptest` crate (see DESIGN.md §5).
//!
//! The build environment has no network access, so this vendored crate
//! implements the *subset* of the proptest API the workspace's property
//! tests use: range/tuple/collection/option strategies, `prop_map`,
//! `prop_oneof!`, the `proptest!` macro, and `prop_assert*`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index, derived seed,
//!   and the generated inputs; re-running is deterministic, so the failure
//!   reproduces exactly, it just isn't minimised.
//! * **Deterministic scheduling.** Case seeds derive from the test name and
//!   case index (FNV-1a), so runs are reproducible with no persistence file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Random source handed to strategies (wraps the vendored [`StdRng`]).
pub struct TestRng(StdRng);

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. Unlike upstream there is no intermediate value tree;
/// a strategy maps a random source directly to a value.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Uniform strategy over all values of a type; only the types the workspace
/// needs are implemented.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.inner().random_range(0..2u32) == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.inner().random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec` strategy: length uniform in `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.inner().random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Option` strategy: `None` half the time, `Some(inner)` otherwise.
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.inner().random_range(0..2u32) == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name, mixed with the case index: a stable,
/// deterministic per-case seed with no persistence file.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drive one property: run `cases` deterministic cases, re-raising the first
/// panic with the case index and seed attached to stderr.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng),
{
    for i in 0..config.cases {
        let seed = case_seed(test_name, i);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest: {test_name} failed at case {i}/{} (seed {seed:#018x})",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// The proptest entry macro: a config attribute plus `#[test]` functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?} "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!("proptest: failing inputs: {__inputs}");
                    ::std::panic::resume_unwind(__panic);
                }
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0..10u32, pair in (0..5u64, 1..3usize)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && (1..3).contains(&pair.1));
        }

        #[test]
        fn collections_and_options(
            v in crate::collection::vec(0..100u8, 1..20),
            o in crate::option::of(5..6u64),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 100));
            if let Some(x) = o {
                prop_assert_eq!(x, 5);
            }
        }

        #[test]
        fn oneof_and_map(tagged in prop_oneof![
            (0..10u32).prop_map(|v| ("small", v)),
            (100..110u32).prop_map(|v| ("big", v)),
        ]) {
            match tagged {
                ("small", v) => prop_assert!(v < 10),
                ("big", v) => prop_assert!((100..110).contains(&v)),
                _ => prop_assert!(false, "unexpected tag"),
            }
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::case_seed("a_test", 3), super::case_seed("a_test", 3));
        assert_ne!(super::case_seed("a_test", 3), super::case_seed("a_test", 4));
        assert_ne!(super::case_seed("a_test", 3), super::case_seed("b_test", 3));
    }
}
