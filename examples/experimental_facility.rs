//! The paper's motivating scenario: an experimental facility (think APS
//! light source or an observatory) streams **bursts of time-critical
//! analysis jobs** at an HPC centre that otherwise runs batch simulations.
//!
//! We hand-build the workload instead of using the generator: a steady
//! diet of large rigid simulations and malleable parameter sweeps, plus
//! three experiment "shots", each emitting a burst of on-demand analysis
//! jobs with 20-minute advance notices. The question a facility operator
//! asks: *which mechanism keeps analysis latency near zero, and what does
//! it cost the batch users?*
//!
//! ```text
//! cargo run --release --example experimental_facility
//! ```

use hybrid_workload_sched::prelude::*;

const NODES: u32 = 1_024;

fn build_workload() -> Trace {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    let mut push = |spec: JobSpec| jobs.push(spec);
    let h = SimDuration::from_hours;
    let t = |hrs: u64, mins: u64| SimTime::from_secs(hrs * 3_600 + mins * 60);

    // Batch backdrop: eight 256-node simulations and six malleable sweeps
    // submitted over the first day, enough to keep the machine busy.
    for k in 0..8 {
        push(
            JobSpecBuilder::rigid(id)
                .project(1)
                .submit_at(t(2 * k, 0))
                .size(256)
                .work(h(10))
                .estimate(h(14))
                .setup(SimDuration::from_mins(30))
                .build(),
        );
        id += 1;
    }
    for k in 0..6 {
        push(
            JobSpecBuilder::malleable(id)
                .project(2)
                .submit_at(t(3 * k + 1, 30))
                .size(192)
                .min_size(48)
                .work(h(8))
                .estimate(h(10))
                .setup(SimDuration::from_mins(10))
                .build(),
        );
        id += 1;
    }

    // Three experiment shots at hours 6, 14 and 22; each announces its
    // analysis burst 20 minutes ahead and lands five 96-node jobs.
    for (shot, hour) in [6u64, 14, 22].into_iter().enumerate() {
        for k in 0..5u64 {
            let arrive = t(hour, 5 * k);
            let notice = arrive.saturating_sub(SimDuration::from_mins(20));
            push(
                JobSpecBuilder::on_demand(id)
                    .project(10 + shot as u32)
                    .submit_at(arrive)
                    .size(96)
                    .work(SimDuration::from_mins(45))
                    .estimate(h(1))
                    .notice(notice, arrive)
                    .build(),
            );
            id += 1;
        }
    }
    Trace::new(NODES, SimDuration::from_days(3), jobs)
}

fn main() {
    let trace = build_workload();
    println!(
        "facility workload: {} jobs on {} nodes ({} on-demand analysis bursts)\n",
        trace.len(),
        NODES,
        trace.count_kind(JobKind::OnDemand)
    );

    let mut table = Table::new(vec![
        "mechanism",
        "analysis latency (min)",
        "instant %",
        "batch TAT (h)",
        "util %",
    ]);
    for (name, cfg) in [
        ("FCFS/EASY (status quo)", SimConfig::baseline()),
        ("N&PAA", SimConfig::with_mechanism(Mechanism::N_PAA)),
        ("CUA&SPAA", SimConfig::with_mechanism(Mechanism::CUA_SPAA)),
        ("CUP&SPAA", SimConfig::with_mechanism(Mechanism::CUP_SPAA)),
    ] {
        let out = Simulator::run_trace(&cfg, &trace);
        let m = &out.metrics;
        // Analysis latency: turnaround minus pure runtime (~45 min + setup).
        let latency_min = (m.on_demand.avg_turnaround_h * 60.0 - 45.0).max(0.0);
        let batch_tat = (m.rigid.avg_turnaround_h * m.rigid.completed as f64
            + m.malleable.avg_turnaround_h * m.malleable.completed as f64)
            / (m.rigid.completed + m.malleable.completed).max(1) as f64;
        table.row(vec![
            name.to_string(),
            format!("{latency_min:.1}"),
            format!("{:.0}", m.instant_start_rate * 100.0),
            format!("{batch_tat:.1}"),
            format!("{:.1}", m.utilization * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("the hybrid mechanisms turn multi-hour analysis queueing into (near-)instant starts;");
    println!("the price shows up as a modest batch turnaround increase.");
}
