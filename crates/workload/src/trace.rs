//! Trace container plus a plain-text (CSV) interchange format so traces can
//! be archived, inspected, and replayed byte-identically.

use crate::ids::{JobId, ProjectId};
use crate::job::{JobClass, JobKind, JobSpec, NoticeCategory, NoticeSpec};
use hws_sim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// An ordered job trace for a system of `system_size` identical nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub system_size: u32,
    /// Horizon covering every submission — `validate` enforces
    /// `submit < horizon` for all jobs (completions may spill past it).
    pub horizon: SimDuration,
    /// Jobs sorted by (submit, id).
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    pub fn new(system_size: u32, horizon: SimDuration, mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by_key(|j| (j.submit, j.id));
        Trace {
            system_size,
            horizon,
            jobs,
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn iter_kind(&self, kind: JobKind) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter().filter(move |j| j.kind == kind)
    }

    pub fn count_kind(&self, kind: JobKind) -> usize {
        self.iter_kind(kind).count()
    }

    pub fn iter_class(&self, class: JobClass) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter().filter(move |j| j.class == class)
    }

    pub fn count_class(&self, class: JobClass) -> usize {
        self.iter_class(class).count()
    }

    /// Tag the largest rigid jobs as capability-class campaigns: the top
    /// `ceil(frac × rigid_jobs)` rigid jobs ordered by descending
    /// `(size, work)` (ties by id) become [`JobClass::Capability`].
    ///
    /// Deterministic and RNG-free — tagging consumes no random stream, so
    /// a `frac` of `0.0` leaves the trace (and every downstream replay)
    /// bitwise identical to the untagged one. This is both the
    /// generator's `capability_frac` implementation and the synthetic
    /// capability injection used to replay real SWF logs (which carry no
    /// class information) under capability/capacity co-scheduling.
    ///
    /// Returns the number of jobs tagged.
    ///
    /// # Panics
    ///
    /// Panics when `frac` is outside `0.0..=1.0`.
    pub fn tag_capability(&mut self, frac: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&frac),
            "capability fraction {frac} outside 0..=1"
        );
        if frac == 0.0 {
            return 0;
        }
        let mut rigid: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.kind == JobKind::Rigid)
            .map(|(i, _)| i)
            .collect();
        rigid.sort_by_key(|&i| {
            let j = &self.jobs[i];
            (
                std::cmp::Reverse(j.size),
                std::cmp::Reverse(j.work.as_secs()),
                j.id,
            )
        });
        let n = ((rigid.len() as f64) * frac).ceil().min(rigid.len() as f64) as usize;
        for &i in &rigid[..n] {
            self.jobs[i].class = JobClass::Capability;
        }
        n
    }

    /// Largest `submit − notice_time` gap over all jobs carrying an advance
    /// notice (zero when none do). A job's earliest simulator event is its
    /// notice, which [`crate::job::JobSpec::validate`] proves never precedes
    /// `submit` by more than this bound — so a streaming replay that has
    /// injected every job with `submit ≤ t + max_notice_lead` is guaranteed
    /// to hold *all* trace events up to time `t`.
    pub fn max_notice_lead(&self) -> SimDuration {
        self.jobs
            .iter()
            .filter_map(|j| j.notice.as_ref().map(|n| j.submit.since(n.notice_time)))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Validate every job, the global ordering invariant, and the horizon
    /// invariant (every submission falls inside the horizon).
    ///
    /// # Errors
    ///
    /// Returns the first violation found: a per-job
    /// [`JobSpec::validate`] failure, jobs out of `(submit, id)` order,
    /// or a submission at/after the horizon.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.jobs.windows(2) {
            if (w[0].submit, w[0].id) > (w[1].submit, w[1].id) {
                return Err(format!("jobs out of order at {}", w[1].id));
            }
        }
        for j in &self.jobs {
            j.validate(self.system_size)?;
            if j.submit.as_secs() >= self.horizon.as_secs() {
                return Err(format!(
                    "{}: submit {} outside horizon {}",
                    j.id,
                    j.submit.as_secs(),
                    self.horizon.as_secs()
                ));
            }
        }
        Ok(())
    }

    /// Serialise to the CSV interchange format (header + one row per job).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.jobs.len() + 2));
        let _ = writeln!(
            out,
            "#system_size={},horizon={}",
            self.system_size,
            self.horizon.as_secs()
        );
        out.push_str(
            "id,project,kind,submit,size,min_size,work,estimate,setup,category,notice_time,predicted_arrival,class\n",
        );
        for j in &self.jobs {
            let (nt, pa) = match &j.notice {
                Some(n) => (
                    n.notice_time.as_secs().to_string(),
                    n.predicted_arrival.as_secs().to_string(),
                ),
                None => (String::new(), String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                j.id.0,
                j.project.0,
                j.kind.label(),
                j.submit.as_secs(),
                j.size,
                j.min_size,
                j.work.as_secs(),
                j.estimate.as_secs(),
                j.setup.as_secs(),
                j.category.label(),
                nt,
                pa,
                j.class.label()
            );
        }
        out
    }

    /// Parse the CSV interchange format produced by [`Trace::to_csv`].
    /// Rows may omit the trailing `class` column (pre-capability exports);
    /// such jobs default to [`JobClass::Capacity`].
    ///
    /// # Errors
    ///
    /// Returns a line-tagged message for missing/unknown headers,
    /// wrong field counts, unparsable numbers, or unknown
    /// kind/category/class labels.
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        let meta = lines.next().ok_or("empty trace file")?;
        let meta = meta.strip_prefix('#').ok_or("missing meta line")?;
        let mut system_size = 0u32;
        let mut horizon = SimDuration::ZERO;
        for kv in meta.split(',') {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad meta entry {kv}"))?;
            match k {
                "system_size" => {
                    system_size = v.parse().map_err(|e| format!("system_size: {e}"))?
                }
                "horizon" => {
                    horizon =
                        SimDuration::from_secs(v.parse().map_err(|e| format!("horizon: {e}"))?)
                }
                other => return Err(format!("unknown meta key {other}")),
            }
        }
        let header = lines.next().ok_or("missing header")?;
        if !header.starts_with("id,") {
            return Err("bad header".into());
        }
        let mut jobs = Vec::new();
        for (ln, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 12 && f.len() != 13 {
                return Err(format!(
                    "line {}: expected 12 or 13 fields, got {}",
                    ln + 3,
                    f.len()
                ));
            }
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|e| format!("line {}: {what}: {e}", ln + 3))
            };
            let parse_u32 = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|e| format!("line {}: {what}: {e}", ln + 3))
            };
            let kind = match f[2] {
                "rigid" => JobKind::Rigid,
                "on-demand" => JobKind::OnDemand,
                "malleable" => JobKind::Malleable,
                other => return Err(format!("line {}: unknown kind {other}", ln + 3)),
            };
            let category = match f[9] {
                "no-notice" => NoticeCategory::NoNotice,
                "accurate" => NoticeCategory::Accurate,
                "early" => NoticeCategory::Early,
                "late" => NoticeCategory::Late,
                other => return Err(format!("line {}: unknown category {other}", ln + 3)),
            };
            let notice = if f[10].is_empty() {
                None
            } else {
                Some(NoticeSpec {
                    notice_time: SimTime::from_secs(parse_u64(f[10], "notice_time")?),
                    predicted_arrival: SimTime::from_secs(parse_u64(f[11], "predicted_arrival")?),
                })
            };
            let class = match f.get(12).copied() {
                None | Some("capacity") => JobClass::Capacity,
                Some("capability") => JobClass::Capability,
                Some(other) => return Err(format!("line {}: unknown class {other}", ln + 3)),
            };
            jobs.push(JobSpec {
                id: JobId(parse_u64(f[0], "id")?),
                project: ProjectId(parse_u32(f[1], "project")?),
                kind,
                submit: SimTime::from_secs(parse_u64(f[3], "submit")?),
                size: parse_u32(f[4], "size")?,
                min_size: parse_u32(f[5], "min_size")?,
                work: SimDuration::from_secs(parse_u64(f[6], "work")?),
                estimate: SimDuration::from_secs(parse_u64(f[7], "estimate")?),
                setup: SimDuration::from_secs(parse_u64(f[8], "setup")?),
                notice,
                category,
                site_hint: None,
                class,
            });
        }
        Ok(Trace::new(system_size, horizon, jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpecBuilder;

    fn sample_trace() -> Trace {
        let t = SimTime::from_secs;
        let jobs = vec![
            JobSpecBuilder::rigid(0)
                .project(1)
                .submit_at(t(100))
                .size(128)
                .work(SimDuration::from_hours(2))
                .estimate(SimDuration::from_hours(3))
                .setup(SimDuration::from_mins(10))
                .build(),
            JobSpecBuilder::on_demand(1)
                .project(2)
                .submit_at(t(900))
                .size(256)
                .work(SimDuration::from_hours(1))
                .notice(t(100), t(900))
                .build(),
            JobSpecBuilder::malleable(2)
                .project(3)
                .submit_at(t(50))
                .size(500)
                .min_size(100)
                .work(SimDuration::from_hours(4))
                .build(),
        ];
        Trace::new(1_000, SimDuration::from_days(1), jobs)
    }

    #[test]
    fn constructor_sorts_by_submit() {
        let tr = sample_trace();
        assert_eq!(tr.jobs[0].id, JobId(2)); // submitted at t=50
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn kind_filters() {
        let tr = sample_trace();
        assert_eq!(tr.count_kind(JobKind::Rigid), 1);
        assert_eq!(tr.count_kind(JobKind::OnDemand), 1);
        assert_eq!(tr.count_kind(JobKind::Malleable), 1);
    }

    #[test]
    fn csv_round_trip_is_identity() {
        let tr = sample_trace();
        let csv = tr.to_csv();
        let back = Trace::from_csv(&csv).expect("parse");
        assert_eq!(tr, back);
        // And the serialised form is stable.
        assert_eq!(back.to_csv(), csv);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Trace::from_csv("").is_err());
        assert!(Trace::from_csv("no meta\nid,\n").is_err());
        let tr = sample_trace();
        let mut csv = tr.to_csv();
        csv.push_str("1,2,3\n");
        assert!(Trace::from_csv(&csv).is_err());
    }

    #[test]
    fn validate_flags_out_of_order_rows() {
        let mut tr = sample_trace();
        tr.jobs.swap(0, 2);
        assert!(tr.validate().is_err());
    }

    #[test]
    fn csv_round_trip_preserves_capability_class() {
        let mut tr = sample_trace();
        let tagged = tr.tag_capability(1.0);
        assert_eq!(tagged, 1); // one rigid job in the sample
        let back = Trace::from_csv(&tr.to_csv()).expect("parse");
        assert_eq!(tr, back);
        assert_eq!(back.count_class(JobClass::Capability), 1);
    }

    #[test]
    fn csv_without_class_column_defaults_to_capacity() {
        // Pre-capability exports had 12 fields; they must still parse.
        let tr = sample_trace();
        let csv: String = tr
            .to_csv()
            .lines()
            .map(|l| {
                let stripped = l
                    .strip_suffix(",capacity")
                    .or_else(|| l.strip_suffix(",class"))
                    .unwrap_or(l);
                format!("{stripped}\n")
            })
            .collect();
        let back = Trace::from_csv(&csv).expect("12-field rows parse");
        assert_eq!(back.count_class(JobClass::Capability), 0);
        assert_eq!(back.len(), tr.len());
    }

    #[test]
    fn csv_rejects_unknown_class() {
        let tr = sample_trace();
        let csv = tr.to_csv().replace(",capacity", ",warpdrive");
        let err = Trace::from_csv(&csv).unwrap_err();
        assert!(err.contains("unknown class"), "{err}");
    }

    #[test]
    fn tag_capability_picks_largest_rigid_jobs() {
        let jobs = vec![
            JobSpecBuilder::rigid(0)
                .size(64)
                .work(SimDuration::from_hours(1))
                .build(),
            JobSpecBuilder::rigid(1)
                .size(512)
                .work(SimDuration::from_hours(1))
                .build(),
            JobSpecBuilder::rigid(2)
                .size(128)
                .work(SimDuration::from_hours(1))
                .build(),
            JobSpecBuilder::malleable(3).size(900).build(),
            JobSpecBuilder::on_demand(4).size(900).build(),
        ];
        let mut tr = Trace::new(1_000, SimDuration::from_days(1), jobs);
        // Half of the 3 rigid jobs → ceil(1.5) = 2 tagged: sizes 512, 128.
        assert_eq!(tr.tag_capability(0.5), 2);
        let tagged: Vec<u64> = tr
            .iter_class(JobClass::Capability)
            .map(|j| j.id.0)
            .collect();
        assert_eq!(tagged, vec![1, 2]);
        // Malleable/on-demand jobs are never tagged, however large.
        assert_eq!(
            tr.jobs.iter().find(|j| j.id.0 == 3).unwrap().class,
            JobClass::Capacity
        );
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn tag_capability_zero_is_a_no_op() {
        let mut tr = sample_trace();
        let before = tr.clone();
        assert_eq!(tr.tag_capability(0.0), 0);
        assert_eq!(tr, before);
    }

    #[test]
    #[should_panic(expected = "outside 0..=1")]
    fn tag_capability_rejects_bad_fraction() {
        let mut tr = sample_trace();
        tr.tag_capability(1.5);
    }

    #[test]
    fn validate_flags_submissions_outside_horizon() {
        let mut tr = sample_trace();
        assert!(tr.validate().is_ok());
        tr.horizon = SimDuration::from_secs(800); // last submit is at 900 s
        let err = tr.validate().unwrap_err();
        assert!(err.contains("outside horizon"), "{err}");
    }
}
