//! Integration tests for the failure-injection extension: Daly-optimal
//! checkpointing actually earns its keep once nodes can fail.

use hws_core::FailureConfig;
use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;

fn failing_cfg(mtbf_hours: f64) -> SimConfig {
    SimConfig::baseline().with_failures(mtbf_hours).paranoid()
}

#[test]
fn failing_jobs_still_complete() {
    // Aggressive failures (job MTBF ≈ 40 min for 128 nodes): every job
    // must still finish by retrying from checkpoints.
    let trace = TraceConfig::tiny().generate(1);
    let mut cfg = failing_cfg(2_000.0);
    cfg.ckpt.node_mtbf_hours = 2_000.0; // keep τ consistent with failures
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, trace.len());
    assert!(out.metrics.total_failures > 0, "expected some failures");
}

#[test]
fn failures_extend_turnaround() {
    let trace = TraceConfig::tiny().generate(2);
    let healthy = Simulator::run_trace(&SimConfig::baseline(), &trace).metrics;
    let mut cfg = failing_cfg(1_000.0);
    cfg.ckpt.node_mtbf_hours = 1_000.0;
    let failing = Simulator::run_trace(&cfg, &trace).metrics;
    assert!(failing.total_failures > 0);
    assert!(
        failing.avg_turnaround_h > healthy.avg_turnaround_h,
        "failures {} h !> healthy {} h",
        failing.avg_turnaround_h,
        healthy.avg_turnaround_h
    );
}

#[test]
fn checkpoints_bound_failure_losses() {
    // One long rigid job on a failure-prone machine: with checkpoints the
    // job converges; the wasted fraction shrinks versus no checkpoints.
    let jobs = vec![JobSpecBuilder::rigid(0)
        .size(64)
        .work(D::from_hours(20))
        .estimate(D::from_hours(24))
        .setup(D::from_mins(10))
        .build()];
    let trace = Trace::new(64, D::from_days(10), jobs);

    let mut with_ckpt = failing_cfg(400.0); // job MTBF = 6.25 h
    with_ckpt.ckpt.node_mtbf_hours = 400.0;
    let mut no_ckpt = with_ckpt.clone();
    no_ckpt.ckpt = CkptConfig::disabled();

    let a = Simulator::run_trace(&with_ckpt, &trace).metrics;
    let b = Simulator::run_trace(&no_ckpt, &trace).metrics;
    assert_eq!(a.completed_jobs, 1);
    assert_eq!(b.completed_jobs, 1);
    assert!(a.total_failures > 0);
    // Without checkpoints every failure restarts from zero: the job holds
    // the machine far longer for the same useful work.
    assert!(
        b.avg_turnaround_h > a.avg_turnaround_h,
        "no-ckpt {} h !> ckpt {} h",
        b.avg_turnaround_h,
        a.avg_turnaround_h
    );
}

#[test]
fn failure_streams_are_deterministic() {
    let trace = TraceConfig::tiny().generate(3);
    let mut cfg = failing_cfg(3_000.0);
    cfg.measure_decisions = false;
    let a = Simulator::run_trace(&cfg, &trace).metrics;
    let b = Simulator::run_trace(&cfg, &trace).metrics;
    assert_eq!(a, b);
    // A different failure seed gives a different trajectory.
    cfg.failures = FailureConfig {
        seed: 99,
        ..cfg.failures
    };
    let c = Simulator::run_trace(&cfg, &trace).metrics;
    assert_ne!(a.total_failures, c.total_failures);
}

#[test]
fn failed_on_demand_job_restarts_with_priority() {
    let jobs = vec![
        JobSpecBuilder::on_demand(0)
            .submit_at(T::from_secs(0))
            .size(64)
            .work(D::from_hours(10))
            .estimate(D::from_hours(12))
            .build(),
        JobSpecBuilder::rigid(1)
            .submit_at(T::from_secs(100))
            .size(64)
            .work(D::from_hours(1))
            .estimate(D::from_hours(1))
            .build(),
    ];
    let trace = Trace::new(64, D::from_days(10), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA)
        .with_failures(300.0)
        .paranoid();
    cfg.ckpt.node_mtbf_hours = 300.0;
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, 2);
    if out.metrics.total_failures > 0 {
        // The on-demand job restarted ahead of the rigid job every time:
        // rigid only runs after the od fully completes.
        assert!(out.metrics.rigid.avg_turnaround_h >= out.metrics.on_demand.avg_turnaround_h);
    }
}

#[test]
fn malleable_failures_lose_only_setup() {
    // A single malleable job that fails: unlike rigid jobs it resumes from
    // where it stopped, so total time ≈ work + k×setup, far below 2×work.
    let jobs = vec![JobSpecBuilder::malleable(0)
        .size(64)
        .min_size(16)
        .work(D::from_hours(10))
        .estimate(D::from_hours(12))
        .setup(D::from_mins(5))
        .build()];
    let trace = Trace::new(64, D::from_days(5), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::N_SPAA)
        .with_failures(600.0)
        .paranoid();
    cfg.ckpt.node_mtbf_hours = 600.0;
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, 1);
    let m = &out.metrics;
    if m.total_failures > 0 {
        let budget = 10.0 + (m.total_failures as f64 + 1.0) * (5.0 / 60.0) + 0.1;
        assert!(
            m.avg_turnaround_h <= budget,
            "malleable lost more than setup per failure: {} h > {budget} h ({} failures)",
            m.avg_turnaround_h,
            m.total_failures
        );
    }
}
