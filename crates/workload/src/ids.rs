//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifies a job within one trace. Ids are assigned in submission order,
/// which also makes them a deterministic FCFS tie-breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Identifies an allocation project (the unit the paper uses to assign job
/// types: "we group jobs by their project names and assume that all jobs
/// belonging to one project have the same job types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProjectId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for ProjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(JobId(7).to_string(), "J7");
        assert_eq!(ProjectId(3).to_string(), "P3");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(JobId(2) < JobId(10));
        assert!(ProjectId(0) < ProjectId(1));
    }
}
