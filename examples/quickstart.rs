//! Quickstart: generate a scaled-down Theta-like workload, schedule it with
//! one hybrid mechanism, and read the paper's four metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hybrid_workload_sched::prelude::*;

fn main() {
    // 1. A synthetic workload: 512 nodes, one month, bursty on-demand
    //    projects (deterministic in the seed).
    let trace = TraceConfig::small().generate(42);
    println!(
        "workload: {} jobs on {} nodes ({} rigid / {} on-demand / {} malleable)",
        trace.len(),
        trace.system_size,
        trace.count_kind(JobKind::Rigid),
        trace.count_kind(JobKind::OnDemand),
        trace.count_kind(JobKind::Malleable),
    );

    // 2. Schedule with CUA&SPAA: collect nodes from finishing jobs once an
    //    on-demand notice lands; shrink malleable jobs at arrival if the
    //    collection fell short.
    let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
    let outcome = Simulator::run_trace(&cfg, &trace);
    let m = &outcome.metrics;

    println!("\nmechanism: {}", outcome.mechanism);
    println!("  avg turnaround        {:>7.1} h", m.avg_turnaround_h);
    println!(
        "    rigid / od / mall.  {:>6.1} / {:.1} / {:.1} h",
        m.rigid.avg_turnaround_h, m.on_demand.avg_turnaround_h, m.malleable.avg_turnaround_h
    );
    println!("  system utilization    {:>7.1} %", m.utilization * 100.0);
    println!(
        "  od instant-start rate {:>7.1} %",
        m.instant_start_rate * 100.0
    );
    println!(
        "  preemption ratio      {:>7.1} % rigid, {:.1} % malleable",
        m.rigid.preemption_ratio * 100.0,
        m.malleable.preemption_ratio * 100.0
    );
    println!(
        "  scheduler decisions   {:>7.1} µs mean ({:.1} µs max)",
        m.decision_mean_us, m.decision_max_us
    );

    // 3. Compare with the plain FCFS/EASY baseline (Table II).
    let base = Simulator::run_trace(&SimConfig::baseline(), &trace);
    println!("\nbaseline FCFS/EASY: {}", base.metrics.one_line());
    println!("hybrid  {}: {}", outcome.mechanism, m.one_line());
}
