//! Workload characterisation — the data behind the paper's Table I and
//! Figures 3, 4, 5.

use crate::job::JobKind;
use crate::trace::Trace;
use hws_sim::SimDuration;

/// Table I-style summary of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    pub system_size: u32,
    pub n_jobs: usize,
    pub n_active_projects: usize,
    pub max_work: SimDuration,
    pub min_size: u32,
    pub max_size: u32,
    pub total_node_hours: f64,
    pub n_rigid: usize,
    pub n_on_demand: usize,
    pub n_malleable: usize,
}

pub fn summarize(trace: &Trace) -> WorkloadSummary {
    let mut projects = std::collections::HashSet::new();
    let mut max_work = SimDuration::ZERO;
    let mut min_size = u32::MAX;
    let mut max_size = 0;
    let mut node_hours = 0.0;
    for j in &trace.jobs {
        projects.insert(j.project);
        max_work = max_work.max(j.work);
        min_size = min_size.min(j.size);
        max_size = max_size.max(j.size);
        node_hours += j.work_node_hours();
    }
    WorkloadSummary {
        system_size: trace.system_size,
        n_jobs: trace.len(),
        n_active_projects: projects.len(),
        max_work,
        min_size: if trace.is_empty() { 0 } else { min_size },
        max_size,
        total_node_hours: node_hours,
        n_rigid: trace.count_kind(JobKind::Rigid),
        n_on_demand: trace.count_kind(JobKind::OnDemand),
        n_malleable: trace.count_kind(JobKind::Malleable),
    }
}

/// One size-range slice of Fig. 3: job count (outer ring) and node-hours
/// (inner ring).
#[derive(Debug, Clone, PartialEq)]
pub struct SizeBucketStat {
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
    pub n_jobs: usize,
    pub node_hours: f64,
}

impl SizeBucketStat {
    pub fn label(&self) -> String {
        format!("{}-{}", self.lo, self.hi - 1)
    }
}

/// Histogram of jobs and node-hours over doubling size buckets (Fig. 3).
pub fn size_histogram(trace: &Trace, buckets: &[(u32, u32)]) -> Vec<SizeBucketStat> {
    let mut out: Vec<SizeBucketStat> = buckets
        .iter()
        .map(|&(lo, hi)| SizeBucketStat {
            lo,
            hi,
            n_jobs: 0,
            node_hours: 0.0,
        })
        .collect();
    for j in &trace.jobs {
        // Jobs below the first bucket (possible in scaled-down configs) fold
        // into the first bucket; jobs above the last fold into the last.
        let idx = out
            .iter()
            .position(|b| j.size >= b.lo && j.size < b.hi)
            .unwrap_or(if j.size < out[0].lo { 0 } else { out.len() - 1 });
        out[idx].n_jobs += 1;
        out[idx].node_hours += j.work_node_hours();
    }
    out
}

/// Job-type shares by job count (the per-trace bars of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeShares {
    pub rigid: f64,
    pub on_demand: f64,
    pub malleable: f64,
}

pub fn type_shares(trace: &Trace) -> TypeShares {
    let n = trace.len().max(1) as f64;
    TypeShares {
        rigid: trace.count_kind(JobKind::Rigid) as f64 / n,
        on_demand: trace.count_kind(JobKind::OnDemand) as f64 / n,
        malleable: trace.count_kind(JobKind::Malleable) as f64 / n,
    }
}

/// Number of on-demand arrivals per week of the horizon (Fig. 5).
pub fn weekly_on_demand(trace: &Trace) -> Vec<u32> {
    let weeks = trace
        .horizon
        .as_secs()
        .div_ceil(SimDuration::WEEK.as_secs())
        .max(1) as usize;
    let mut counts = vec![0u32; weeks];
    for j in trace.iter_kind(JobKind::OnDemand) {
        let w = (j.submit.as_secs() / SimDuration::WEEK.as_secs()) as usize;
        counts[w.min(weeks - 1)] += 1;
    }
    counts
}

/// Coefficient of variation of a series — used to quantify the burstiness
/// visible in Fig. 5 (a Poisson-flat series has a much lower CV).
pub fn coefficient_of_variation(series: &[u32]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let n = series.len() as f64;
    let mean = series.iter().map(|&x| x as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = series
        .iter()
        .map(|&x| (x as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;
    use crate::job::JobSpecBuilder;
    use hws_sim::SimTime;

    #[test]
    fn summary_counts_everything() {
        let tr = TraceConfig::small().generate(1);
        let s = summarize(&tr);
        assert_eq!(s.n_jobs, tr.len());
        assert_eq!(s.n_rigid + s.n_on_demand + s.n_malleable, s.n_jobs);
        assert!(s.total_node_hours > 0.0);
        assert!(s.min_size >= 16);
        assert!(s.max_work <= SimDuration::from_days(1));
    }

    #[test]
    fn size_histogram_partitions_jobs() {
        let cfg = TraceConfig::small();
        let tr = cfg.generate(2);
        let hist = size_histogram(&tr, &cfg.size_buckets());
        assert_eq!(hist.iter().map(|b| b.n_jobs).sum::<usize>(), tr.len());
        let total_nh: f64 = hist.iter().map(|b| b.node_hours).sum();
        assert!((total_nh - summarize(&tr).total_node_hours).abs() < 1e-6);
    }

    #[test]
    fn small_jobs_dominate_counts_large_jobs_hold_hours() {
        // The Fig. 3 shape: the smallest bucket has the most jobs, but its
        // node-hour share is far below its job share.
        let cfg = TraceConfig::theta_2019().with_jobs(8_000);
        let tr = cfg.generate(3);
        let hist = size_histogram(&tr, &cfg.size_buckets());
        let total_jobs: usize = hist.iter().map(|b| b.n_jobs).sum();
        let total_nh: f64 = hist.iter().map(|b| b.node_hours).sum();
        let job_share0 = hist[0].n_jobs as f64 / total_jobs as f64;
        let nh_share0 = hist[0].node_hours / total_nh;
        assert!(job_share0 > 0.35, "smallest bucket job share {job_share0}");
        assert!(
            nh_share0 < job_share0,
            "node-hour share should lag job share"
        );
    }

    #[test]
    fn type_shares_sum_to_one() {
        let tr = TraceConfig::small().generate(4);
        let s = type_shares(&tr);
        assert!((s.rigid + s.on_demand + s.malleable - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weekly_on_demand_counts_match_total() {
        let tr = TraceConfig::small().generate(5);
        let weekly = weekly_on_demand(&tr);
        assert_eq!(weekly.len(), 5); // 30 days -> 5 weeks (ceil)
        assert_eq!(
            weekly.iter().map(|&c| c as usize).sum::<usize>(),
            tr.count_kind(JobKind::OnDemand)
        );
    }

    #[test]
    fn on_demand_submissions_are_bursty() {
        // Burstiness claim of Fig. 5: the weekly series has a high CV
        // compared with a flat series.
        let cfg = TraceConfig::theta_2019().with_jobs(6_000);
        let tr = cfg.generate(6);
        let weekly = weekly_on_demand(&tr);
        let cv = coefficient_of_variation(&weekly);
        assert!(cv > 0.3, "expected bursty weekly series, CV = {cv}");
    }

    #[test]
    fn cv_of_flat_series_is_zero() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
    }

    #[test]
    fn histogram_folds_out_of_range_sizes() {
        let jobs = vec![
            JobSpecBuilder::rigid(0)
                .size(2)
                .submit_at(SimTime::ZERO)
                .build(),
            JobSpecBuilder::rigid(1)
                .size(4_000)
                .submit_at(SimTime::ZERO)
                .build(),
        ];
        let tr = Trace::new(4_392, SimDuration::from_days(1), jobs);
        let hist = size_histogram(&tr, &[(128, 256), (256, 4_393)]);
        assert_eq!(hist[0].n_jobs, 1);
        assert_eq!(hist[1].n_jobs, 1);
    }
}
