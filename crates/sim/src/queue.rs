//! The future-event list: a binary heap of timestamped events with
//! deterministic FIFO tie-breaking and O(1) lazy cancellation.
//!
//! Cancellation matters for this simulator: a scheduled job-finish event
//! becomes stale when the job is preempted or shrunk, and a planned
//! checkpoint-triggered preemption (CUP) is dropped when its on-demand job
//! arrives early. Cancelled entries stay in the heap and are skipped on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle for a scheduled event, used to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

// Reverse ordering => BinaryHeap becomes a min-heap on (time, seq).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// Future-event list with stable ordering and lazy cancellation.
///
/// Two bookkeeping guarantees keep long replays bounded:
///
/// * `cancelled ⊆ pending` — cancelling an already-delivered (or unknown)
///   id is a true no-op, so stale cancels can never leak tombstones;
/// * when cancelled tombstones outnumber live entries, the heap is
///   compacted in O(heap) — epoch-bumped Finish/Kill events accumulating
///   under heavy preemption can never dominate the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    /// Ids still in the heap (scheduled, not yet delivered or reclaimed).
    pending: HashSet<EventId>,
    next_seq: u64,
    /// High-water mark of delivered time; scheduling before it is a logic
    /// error caught in debug builds.
    watermark: SimTime,
    n_cancelled_popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
            n_cancelled_popped: 0,
        }
    }

    /// Schedule `event` at absolute time `t`. Returns a handle for
    /// cancellation. Scheduling in the causal past (before the last popped
    /// event) is a bug in the caller and panics in debug builds; in release
    /// the event is clamped to the watermark so the simulation stays
    /// monotone.
    pub fn schedule(&mut self, t: SimTime, event: E) -> EventId {
        debug_assert!(
            t >= self.watermark,
            "scheduled event at {t} before watermark {}",
            self.watermark
        );
        let t = t.max(self.watermark);
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time: t,
            seq: self.next_seq,
            id,
            event,
        });
        self.pending.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancel a previously scheduled event. Cancelling an already-delivered,
    /// already-cancelled, or unknown event is a true no-op (returns
    /// `false`) — no tombstone is recorded, so stale cancels cannot grow
    /// the cancelled set on long replays.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.contains(&id) || !self.cancelled.insert(id) {
            return false;
        }
        // Tombstone compaction: when cancelled entries outnumber the live
        // ones, rebuild the heap without them. O(heap), amortized O(1) per
        // cancel; keeps epoch-bumped Finish/Kill tombstones from dominating
        // the heap under heavy preemption. The threshold reads are hoisted
        // into locals so the common no-compaction path is one compare and
        // a never-taken branch into the `#[cold]` rebuild.
        let tombstones = self.cancelled.len();
        let heap_len = self.heap.len();
        if tombstones * 2 > heap_len {
            self.compact();
        }
        true
    }

    /// Drop every cancelled entry from the heap in one pass. Cold: at most
    /// one compaction per `heap/2` cancels, and most replays never cancel
    /// enough to trigger it at all.
    #[cold]
    #[inline(never)]
    fn compact(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let live: Vec<Entry<E>> = entries
            .into_iter()
            .filter(|e| {
                if self.cancelled.remove(&e.id) {
                    self.pending.remove(&e.id);
                    self.n_cancelled_popped += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        debug_assert!(self.cancelled.is_empty());
        self.heap = BinaryHeap::from(live);
    }

    /// Pop the next live event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            self.pending.remove(&entry.id);
            if self.cancelled.remove(&entry.id) {
                self.n_cancelled_popped += 1;
                continue;
            }
            self.watermark = entry.time;
            return Some((entry.time, entry.id, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.contains(&head.id) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.pending.remove(&e.id);
                self.cancelled.remove(&e.id);
                self.n_cancelled_popped += 1;
                continue;
            }
            return Some(head.time);
        }
    }

    /// Number of entries in the heap, *including* not-yet-skipped cancelled
    /// ones (cheap upper bound).
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// Exact number of live (non-cancelled) events.
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Cancelled entries reclaimed so far (skipped during pops or dropped
    /// by tombstone compaction).
    pub fn cancelled_skipped(&self) -> u64 {
        self.n_cancelled_popped
    }

    /// Cancelled entries still buried in the heap (not yet reclaimed).
    pub fn cancelled_pending(&self) -> usize {
        self.cancelled.len()
    }

    /// The delivery high-water mark (time of the most recent pop).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, _, e)| e), None);
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.live_len(), 1);
    }

    #[test]
    fn watermark_advances() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        q.pop();
        assert_eq!(q.watermark(), t(7));
        // Scheduling at the watermark is allowed (same-instant cascades).
        q.schedule(t(7), ());
        assert_eq!(q.pop().map(|(ts, _, _)| ts), Some(t(7)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before watermark")]
    fn schedule_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_skipped(), 1);
    }

    #[test]
    fn is_empty_after_draining() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_pop_leaks_no_tombstone() {
        // Regression: cancelling an already-delivered event used to insert
        // its id into `cancelled` with no heap entry left to reclaim it,
        // growing the set unboundedly on long replays.
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("a"));
        assert!(!q.cancel(a), "stale cancel must be a no-op");
        assert_eq!(q.cancelled_pending(), 0, "no tombstone for delivered id");
        // Repeated stale cancels still leak nothing.
        for _ in 0..100 {
            q.cancel(a);
        }
        assert_eq!(q.cancelled_pending(), 0);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert!(!q.cancel(b));
        assert_eq!(q.cancelled_pending(), 0);
    }

    #[test]
    fn compaction_bounds_heap_under_cancel_heavy_workload() {
        // Epoch-bump churn: most scheduled events are cancelled before
        // delivery. Compaction must keep the heap from filling up with
        // tombstones: whenever cancelled entries outnumber live ones the
        // heap is rebuilt, so `len_upper_bound` stays within 2x the live
        // count.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..128).map(|i| q.schedule(t(1 + i), i)).collect();
        for id in &ids[..100] {
            assert!(q.cancel(*id));
            assert!(
                q.cancelled_pending() * 2 <= q.len_upper_bound(),
                "tombstones exceed half the heap"
            );
        }
        assert_eq!(q.live_len(), 28);
        assert!(
            q.len_upper_bound() <= 2 * q.live_len(),
            "heap {} not compacted (live {})",
            q.len_upper_bound(),
            q.live_len()
        );
        // Delivery order and content are unaffected by compaction.
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(survivors, (100..128).collect::<Vec<_>>());
        assert_eq!(q.cancelled_pending(), 0);
        // Conservation: every scheduled event was delivered or reclaimed.
        assert_eq!(q.scheduled_total(), 128);
        assert_eq!(q.cancelled_skipped(), 100);
    }
}
