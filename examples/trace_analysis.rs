//! Characterize a generated workload the way the paper characterizes the
//! Theta trace (Table I, Figures 1, 3, 4, 5): size mix, core-hour
//! distribution, job-type shares, notice categories, and on-demand
//! burstiness — plus a CSV round-trip to show the trace interchange format.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use hws_workload::stats;
use hybrid_workload_sched::prelude::*;

fn main() {
    let cfg = TraceConfig::theta_2019().with_jobs(6_000);
    let trace = cfg.generate(1);
    let s = stats::summarize(&trace);

    println!("== Table I style summary ==");
    println!("  nodes            {}", s.system_size);
    println!("  jobs             {}", s.n_jobs);
    println!("  active projects  {}", s.n_active_projects);
    println!("  max job length   {}", s.max_work);
    println!("  min job size     {} nodes", s.min_size);
    println!(
        "  total work       {:.2}M node-hours",
        s.total_node_hours / 1e6
    );

    println!("\n== Fig. 3 style: size mix ==");
    let hist = stats::size_histogram(&trace, &cfg.size_buckets());
    let (tj, tn): (usize, f64) = (
        hist.iter().map(|b| b.n_jobs).sum(),
        hist.iter().map(|b| b.node_hours).sum(),
    );
    for b in &hist {
        println!(
            "  {:>12}: {:>5.1}% of jobs, {:>5.1}% of node-hours",
            b.label(),
            100.0 * b.n_jobs as f64 / tj as f64,
            100.0 * b.node_hours / tn
        );
    }

    println!("\n== Fig. 4 style: type shares ==");
    let ts = stats::type_shares(&trace);
    println!(
        "  rigid {:.1}% | on-demand {:.1}% | malleable {:.1}%",
        ts.rigid * 100.0,
        ts.on_demand * 100.0,
        ts.malleable * 100.0
    );

    println!("\n== Fig. 1 style: on-demand notice categories ==");
    for cat in NoticeCategory::ALL {
        let n = trace
            .iter_kind(JobKind::OnDemand)
            .filter(|j| j.category == cat)
            .count();
        println!("  {:>10}: {n}", cat.label());
    }

    println!("\n== Fig. 5 style: weekly on-demand burstiness ==");
    let weekly = stats::weekly_on_demand(&trace);
    let cv = stats::coefficient_of_variation(&weekly);
    let max = weekly.iter().copied().max().unwrap_or(1).max(1);
    for (w, n) in weekly.iter().enumerate().take(20) {
        println!(
            "  week {:>2} |{}",
            w + 1,
            "#".repeat((n * 50 / max) as usize)
        );
    }
    println!(
        "  (showing 20 of {} weeks; weekly CV = {cv:.2})",
        weekly.len()
    );

    // Round-trip through the CSV interchange format.
    let csv = trace.to_csv();
    let reparsed = Trace::from_csv(&csv).expect("round trip");
    assert_eq!(reparsed, trace);
    println!("\nCSV interchange round-trip OK ({} bytes)", csv.len());
}
