//! Tunable scheduler knob vectors: the coordinate system the policy
//! search (`hws-search`) and the `Environment` facade move through.
//!
//! A [`KnobVector`] is a point in the tuning space layered *on top of* a
//! base `SimConfig`: every field is an override, and the distinguished
//! [`KnobVector::identity`] point overrides nothing — applying it to any
//! base configuration provably leaves the run bitwise unchanged (the
//! differential-parity suites lean on this).
//!
//! The text codec follows the house single-line `key=value` style (see
//! `outage.rs` for the multi-line variant): `to_text` and `from_text`
//! round-trip exactly, floats are printed with `{:?}` so the shortest
//! representation re-parses to the same bits, and malformed input is
//! rejected with a per-field error rather than a panic.

use std::fmt;

/// Lower bound on [`KnobVector::ckpt_mult`] (1/64 of the configured
/// checkpoint interval). Guards the `CkptConfig::with_factor` positivity
/// assert and keeps τ from rounding to zero-ish pathologies.
pub const CKPT_MULT_MIN: f64 = 1.0 / 64.0;
/// Upper bound on [`KnobVector::ckpt_mult`] (64× the configured
/// interval — effectively "almost never checkpoint" already).
pub const CKPT_MULT_MAX: f64 = 64.0;

/// EASY-backfill aggressiveness preset, mapped onto the two boolean
/// backfill switches of the simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackfillLevel {
    /// No backfilling at all (`easy_backfill = false`).
    Off,
    /// Plain EASY behind the blocked head (`easy_backfill = true`,
    /// `backfill_on_reserved = false`).
    Conservative,
    /// EASY plus squatting on notice-phase reservations
    /// (`easy_backfill = true`, `backfill_on_reserved = true`).
    Aggressive,
}

impl BackfillLevel {
    /// Every level, in declaration order (search-space enumeration).
    pub const ALL: [BackfillLevel; 3] = [
        BackfillLevel::Off,
        BackfillLevel::Conservative,
        BackfillLevel::Aggressive,
    ];

    /// The `(easy_backfill, backfill_on_reserved)` pair this level sets.
    pub fn flags(self) -> (bool, bool) {
        match self {
            BackfillLevel::Off => (false, false),
            BackfillLevel::Conservative => (true, false),
            BackfillLevel::Aggressive => (true, true),
        }
    }

    fn token(self) -> &'static str {
        match self {
            BackfillLevel::Off => "off",
            BackfillLevel::Conservative => "conservative",
            BackfillLevel::Aggressive => "aggressive",
        }
    }

    fn parse(s: &str) -> Option<BackfillLevel> {
        BackfillLevel::ALL.into_iter().find(|l| l.token() == s)
    }
}

/// Federation placement policy choice, by name. Mirrors the concrete
/// `PlacementPolicy` implementations in `hws-cluster` without taking a
/// dependency on that crate — the applier resolves the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlacementChoice {
    FirstFit,
    LeastLoaded,
    ClassAffinity,
}

impl PlacementChoice {
    /// Every choice, in declaration order (search-space enumeration).
    pub const ALL: [PlacementChoice; 3] = [
        PlacementChoice::FirstFit,
        PlacementChoice::LeastLoaded,
        PlacementChoice::ClassAffinity,
    ];

    /// The policy name as `PlacementPolicy::name` reports it.
    pub fn token(self) -> &'static str {
        match self {
            PlacementChoice::FirstFit => "first-fit",
            PlacementChoice::LeastLoaded => "least-loaded",
            PlacementChoice::ClassAffinity => "class-affinity",
        }
    }

    fn parse(s: &str) -> Option<PlacementChoice> {
        PlacementChoice::ALL.into_iter().find(|p| p.token() == s)
    }
}

/// A point in the tuning space: per-field overrides over a base
/// configuration. `None` (and `ckpt_mult = 1.0`) means "keep the base
/// value"; [`KnobVector::identity`] keeps everything.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobVector {
    /// Capability-class admission throttle: at most this many capability
    /// jobs running concurrently (`Some(0)` starves the class entirely).
    /// `None` leaves admission to the base mechanism's hooks.
    pub admit_throttle: Option<u32>,
    /// Backfill aggressiveness override; `None` keeps the base flags.
    pub backfill: Option<BackfillLevel>,
    /// Multiplier on the base checkpoint `interval_factor`. `1.0` is the
    /// identity (`x * 1.0 == x` bitwise for every finite `x`); valid
    /// range is [`CKPT_MULT_MIN`], [`CKPT_MULT_MAX`].
    pub ckpt_mult: f64,
    /// Federation placement policy override; `None` keeps the base
    /// policy. Only meaningful for federated base configurations.
    pub placement: Option<PlacementChoice>,
}

impl Default for KnobVector {
    fn default() -> Self {
        KnobVector::identity()
    }
}

impl KnobVector {
    /// The override-nothing point: applying it to any base configuration
    /// leaves the run bitwise unchanged.
    pub fn identity() -> Self {
        KnobVector {
            admit_throttle: None,
            backfill: None,
            ckpt_mult: 1.0,
            placement: None,
        }
    }

    /// Whether this vector is the identity point.
    pub fn is_identity(&self) -> bool {
        self.admit_throttle.is_none()
            && self.backfill.is_none()
            && self.ckpt_mult == 1.0
            && self.placement.is_none()
    }

    /// Validate the vector. Each rejection arm has its own message (and
    /// a regression test): the appliers downstream feed `ckpt_mult` into
    /// `CkptConfig::with_factor`, which *asserts* positivity — validation
    /// here turns that panic into an `Err` at the API boundary.
    pub fn validate(&self) -> Result<(), String> {
        if self.ckpt_mult.is_nan() {
            return Err("ckpt multiplier is NaN".into());
        }
        if !self.ckpt_mult.is_finite() {
            return Err(format!("ckpt multiplier {} is not finite", self.ckpt_mult));
        }
        if self.ckpt_mult < CKPT_MULT_MIN {
            return Err(format!(
                "ckpt multiplier {} below minimum {CKPT_MULT_MIN}",
                self.ckpt_mult
            ));
        }
        if self.ckpt_mult > CKPT_MULT_MAX {
            return Err(format!(
                "ckpt multiplier {} above maximum {CKPT_MULT_MAX}",
                self.ckpt_mult
            ));
        }
        Ok(())
    }

    /// Single-line text form, e.g.
    /// `admit=none backfill=keep ckpt=1.0 placement=keep`.
    /// Round-trips exactly through [`KnobVector::from_text`].
    pub fn to_text(&self) -> String {
        let admit = match self.admit_throttle {
            None => "none".to_string(),
            Some(k) => k.to_string(),
        };
        let backfill = match self.backfill {
            None => "keep",
            Some(l) => l.token(),
        };
        let placement = match self.placement {
            None => "keep",
            Some(p) => p.token(),
        };
        format!(
            "admit={admit} backfill={backfill} ckpt={:?} placement={placement}",
            self.ckpt_mult
        )
    }

    /// Parse the [`KnobVector::to_text`] form. Rejects unknown keys,
    /// duplicate keys, missing keys, and unparsable values; the result is
    /// additionally [`KnobVector::validate`]d.
    pub fn from_text(s: &str) -> Result<KnobVector, String> {
        let mut admit: Option<Option<u32>> = None;
        let mut backfill: Option<Option<BackfillLevel>> = None;
        let mut ckpt: Option<f64> = None;
        let mut placement: Option<Option<PlacementChoice>> = None;
        for tok in s.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("knob token {tok:?} is not key=value"))?;
            match key {
                "admit" => {
                    if admit.is_some() {
                        return Err("duplicate knob key admit".into());
                    }
                    admit = Some(match val {
                        "none" => None,
                        v => Some(
                            v.parse::<u32>()
                                .map_err(|_| format!("bad admit throttle {v:?}"))?,
                        ),
                    });
                }
                "backfill" => {
                    if backfill.is_some() {
                        return Err("duplicate knob key backfill".into());
                    }
                    backfill = Some(match val {
                        "keep" => None,
                        v => Some(
                            BackfillLevel::parse(v)
                                .ok_or_else(|| format!("bad backfill level {v:?}"))?,
                        ),
                    });
                }
                "ckpt" => {
                    if ckpt.is_some() {
                        return Err("duplicate knob key ckpt".into());
                    }
                    ckpt = Some(
                        val.parse::<f64>()
                            .map_err(|_| format!("bad ckpt multiplier {val:?}"))?,
                    );
                }
                "placement" => {
                    if placement.is_some() {
                        return Err("duplicate knob key placement".into());
                    }
                    placement = Some(match val {
                        "keep" => None,
                        v => Some(
                            PlacementChoice::parse(v)
                                .ok_or_else(|| format!("bad placement policy {v:?}"))?,
                        ),
                    });
                }
                other => return Err(format!("unknown knob key {other:?}")),
            }
        }
        let v = KnobVector {
            admit_throttle: admit.ok_or("missing knob key admit")?,
            backfill: backfill.ok_or("missing knob key backfill")?,
            ckpt_mult: ckpt.ok_or("missing knob key ckpt")?,
            placement: placement.ok_or("missing knob key placement")?,
        };
        v.validate()?;
        Ok(v)
    }
}

impl fmt::Display for KnobVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let id = KnobVector::identity();
        assert!(id.is_identity());
        assert!(id.validate().is_ok());
        assert_eq!(KnobVector::default(), id);
    }

    #[test]
    fn text_round_trip_exact() {
        let vectors = [
            KnobVector::identity(),
            KnobVector {
                admit_throttle: Some(0),
                backfill: Some(BackfillLevel::Off),
                ckpt_mult: CKPT_MULT_MIN,
                placement: Some(PlacementChoice::ClassAffinity),
            },
            KnobVector {
                admit_throttle: Some(u32::MAX),
                backfill: Some(BackfillLevel::Aggressive),
                ckpt_mult: CKPT_MULT_MAX,
                placement: Some(PlacementChoice::LeastLoaded),
            },
            KnobVector {
                admit_throttle: Some(3),
                backfill: Some(BackfillLevel::Conservative),
                ckpt_mult: 0.333333333333333,
                placement: Some(PlacementChoice::FirstFit),
            },
        ];
        for v in vectors {
            let text = v.to_text();
            let back = KnobVector::from_text(&text).expect("round trip");
            assert_eq!(back, v, "through {text:?}");
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn identity_text_is_stable() {
        assert_eq!(
            KnobVector::identity().to_text(),
            "admit=none backfill=keep ckpt=1.0 placement=keep"
        );
    }

    #[test]
    fn rejects_nan_ckpt_mult() {
        let v = KnobVector {
            ckpt_mult: f64::NAN,
            ..KnobVector::identity()
        };
        let err = v.validate().unwrap_err();
        assert!(err.contains("NaN"), "{err}");
    }

    #[test]
    fn rejects_infinite_ckpt_mult() {
        for inf in [f64::INFINITY, f64::NEG_INFINITY] {
            let v = KnobVector {
                ckpt_mult: inf,
                ..KnobVector::identity()
            };
            let err = v.validate().unwrap_err();
            assert!(err.contains("not finite"), "{err}");
        }
    }

    #[test]
    fn rejects_too_small_ckpt_mult() {
        for bad in [0.0, -1.0, CKPT_MULT_MIN / 2.0, f64::MIN_POSITIVE] {
            let v = KnobVector {
                ckpt_mult: bad,
                ..KnobVector::identity()
            };
            let err = v.validate().unwrap_err();
            assert!(err.contains("below minimum"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_too_large_ckpt_mult() {
        for bad in [CKPT_MULT_MAX * 2.0, f64::MAX] {
            let v = KnobVector {
                ckpt_mult: bad,
                ..KnobVector::identity()
            };
            let err = v.validate().unwrap_err();
            assert!(err.contains("above maximum"), "{bad}: {err}");
        }
    }

    #[test]
    fn boundary_ckpt_mults_are_valid() {
        for ok in [CKPT_MULT_MIN, 1.0, CKPT_MULT_MAX] {
            let v = KnobVector {
                ckpt_mult: ok,
                ..KnobVector::identity()
            };
            assert!(v.validate().is_ok(), "{ok}");
        }
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        let cases = [
            ("admit backfill=keep ckpt=1.0 placement=keep", "key=value"),
            (
                "admit=none backfill=keep ckpt=1.0",
                "missing knob key placement",
            ),
            (
                "admit=none admit=1 backfill=keep ckpt=1.0 placement=keep",
                "duplicate knob key admit",
            ),
            (
                "admit=none backfill=keep ckpt=1.0 placement=keep bogus=1",
                "unknown knob key",
            ),
            (
                "admit=-1 backfill=keep ckpt=1.0 placement=keep",
                "bad admit throttle",
            ),
            (
                "admit=none backfill=sometimes ckpt=1.0 placement=keep",
                "bad backfill level",
            ),
            (
                "admit=none backfill=keep ckpt=fast placement=keep",
                "bad ckpt multiplier",
            ),
            (
                "admit=none backfill=keep ckpt=1.0 placement=everywhere",
                "bad placement policy",
            ),
            (
                "admit=none backfill=keep ckpt=1000.0 placement=keep",
                "above maximum",
            ),
            ("", "missing knob key admit"),
        ];
        for (text, want) in cases {
            let err = KnobVector::from_text(text).unwrap_err();
            assert!(err.contains(want), "{text:?}: {err}");
        }
    }

    #[test]
    fn backfill_flags_map() {
        assert_eq!(BackfillLevel::Off.flags(), (false, false));
        assert_eq!(BackfillLevel::Conservative.flags(), (true, false));
        assert_eq!(BackfillLevel::Aggressive.flags(), (true, true));
    }
}
