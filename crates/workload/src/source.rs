//! Streaming job sources: the driver-facing abstraction that decouples
//! replay from a fully materialized [`Trace`].
//!
//! A [`JobSource`] yields jobs in trace order — ascending `(submit, id)` —
//! exactly once each. The simulator pulls from it lazily as virtual time
//! advances, so resident memory is O(active jobs), not O(trace length):
//!
//! * [`MaterializedSource`] adapts an in-memory [`Trace`] (the classic
//!   path, and the reference behavior streaming must match bitwise);
//! * [`SwfStreamSource`] reads an `HWS-Embedded` SWF export line by line
//!   off disk, so a million-job archive never has to fit in memory.
//!
//! ## The notice-lookahead bound
//!
//! A job's earliest simulator event is its advance notice, which may
//! precede its submission by up to [`JobSource::max_notice_lead`] seconds
//! (`JobSpec::validate` proves `notice_time ≤ submit` and the bound is the
//! maximum gap). A streaming driver that has pulled every job with
//! `submit ≤ t + max_notice_lead` therefore holds *every* trace event up
//! to time `t` — the invariant that makes lazy injection deliver events in
//! exactly the order a pre-seeded queue would. Overestimating the bound
//! only costs a little extra lookahead memory; underestimating it would
//! break replay ordering, so sources must never under-report it.
//!
//! Plain (non-embedded) SWF logs cannot be streamed: the §IV-A class
//! assignment is a whole-file protocol (global project shuffle, re-sort,
//! relabel). Convert them once via `import_swf` + [`crate::to_swf_writer`]
//! and stream the embedded export.

use crate::swf::{parse_embedded_line, SwfError};
use crate::trace::Trace;
use crate::JobSpec;
use hws_sim::{SimDuration, SimTime};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// An ordered stream of jobs for replay. See the module docs for the
/// ordering and lookahead contracts.
pub trait JobSource {
    /// Total nodes of the target system.
    fn system_size(&self) -> u32;

    /// Upper bound on `submit − notice_time` over every job this source
    /// will ever yield (see the module docs). Must not under-report.
    fn max_notice_lead(&self) -> SimDuration;

    /// Pull the next job, in ascending `(submit, id)` order. `None` means
    /// the stream is exhausted for good.
    fn next_job(&mut self) -> Option<JobSpec>;
}

impl<S: JobSource + ?Sized> JobSource for &mut S {
    fn system_size(&self) -> u32 {
        (**self).system_size()
    }
    fn max_notice_lead(&self) -> SimDuration {
        (**self).max_notice_lead()
    }
    fn next_job(&mut self) -> Option<JobSpec> {
        (**self).next_job()
    }
}

/// [`JobSource`] view of an in-memory [`Trace`]: yields clones of the
/// trace's jobs in order. The reference implementation — a streaming
/// source over the same jobs must replay bitwise-identically to this.
pub struct MaterializedSource<'a> {
    trace: &'a Trace,
    pos: usize,
    lead: SimDuration,
}

impl<'a> MaterializedSource<'a> {
    pub fn new(trace: &'a Trace) -> Self {
        MaterializedSource {
            trace,
            pos: 0,
            lead: trace.max_notice_lead(),
        }
    }
}

impl JobSource for MaterializedSource<'_> {
    fn system_size(&self) -> u32 {
        self.trace.system_size
    }

    fn max_notice_lead(&self) -> SimDuration {
        self.lead
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        let job = self.trace.jobs.get(self.pos)?.clone();
        self.pos += 1;
        Some(job)
    }
}

/// Streaming reader of an `HWS-Embedded` SWF export: one [`JobSpec`] per
/// data line, parsed on demand, O(1) resident state.
///
/// The file's headers must declare `; HWS-Embedded: 1` before the first
/// data line; `; HWS-SystemSize:` (or `; MaxNodes:`) supplies the machine
/// and `; HWS-MaxNoticeLead:` the lookahead bound. Exports written by
/// [`crate::to_swf_writer`] carry all three. [`SwfStreamSource::open`]
/// falls back to a pre-scan of the file when the lead header is missing
/// (older exports); [`SwfStreamSource::from_reader`] has no second pass to
/// fall back on and rejects such inputs instead.
///
/// # Panics
///
/// [`JobSource::next_job`] panics on IO errors, malformed data lines, jobs
/// out of `(submit, id)` order, or jobs wider than the system — a corrupt
/// archive mid-replay has no meaningful recovery.
#[derive(Debug)]
pub struct SwfStreamSource<R: BufRead> {
    reader: R,
    /// 1-based line number of the last line read (for error messages).
    line: usize,
    system_size: u32,
    lead: SimDuration,
    /// First data line, consumed while scanning headers.
    peeked: Option<JobSpec>,
    last_key: Option<(SimTime, u64)>,
    done: bool,
}

impl SwfStreamSource<std::io::BufReader<std::fs::File>> {
    /// Open `path` for streaming replay. When the export predates the
    /// `HWS-MaxNoticeLead` header, the file is pre-scanned once to compute
    /// the bound (still O(1) memory).
    ///
    /// # Errors
    ///
    /// IO failures, a missing/disabled `HWS-Embedded` header, malformed
    /// headers, or a malformed first data line.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SwfError> {
        let path = path.into();
        let open = |p: &Path| {
            std::fs::File::open(p)
                .map(std::io::BufReader::new)
                .map_err(|e| SwfError {
                    line: 0,
                    message: format!("open {}: {e}", p.display()),
                })
        };
        match Self::from_reader(open(&path)?) {
            Ok(src) => Ok(src),
            Err(e) if e.message.contains("HWS-MaxNoticeLead") => {
                let lead = scan_max_notice_lead(open(&path)?)?;
                Self::from_reader_with_lead(open(&path)?, lead)
            }
            Err(e) => Err(e),
        }
    }
}

impl<R: BufRead> SwfStreamSource<R> {
    /// Build a streaming source from any reader; requires the
    /// `HWS-MaxNoticeLead` header (see [`SwfStreamSource::open`] for the
    /// pre-scan fallback available on files).
    ///
    /// # Errors
    ///
    /// IO failures, missing `HWS-Embedded`/size/lead headers, or a
    /// malformed first data line.
    pub fn from_reader(reader: R) -> Result<Self, SwfError> {
        Self::build(reader, None)
    }

    /// Build a streaming source with an explicitly supplied notice-lead
    /// bound, overriding (or standing in for) the file header. The caller
    /// must not under-report the bound.
    ///
    /// # Errors
    ///
    /// Same as [`SwfStreamSource::from_reader`], minus the lead-header
    /// requirement.
    pub fn from_reader_with_lead(reader: R, lead: SimDuration) -> Result<Self, SwfError> {
        Self::build(reader, Some(lead))
    }

    fn build(mut reader: R, lead_override: Option<SimDuration>) -> Result<Self, SwfError> {
        let mut line_no = 0usize;
        let mut embedded = false;
        let mut system_size: Option<u32> = None;
        let mut lead: Option<SimDuration> = lead_override;
        let mut peeked = None;
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(|e| SwfError {
                line: line_no + 1,
                message: format!("read error: {e}"),
            })?;
            if n == 0 {
                break; // header-only (empty) archive
            }
            line_no += 1;
            let line = buf.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                let comment = comment.trim();
                if let Some(v) = comment.strip_prefix("HWS-Embedded:") {
                    embedded = v.trim() == "1";
                } else if let Some(v) = comment.strip_prefix("HWS-SystemSize:") {
                    system_size = v.trim().parse().ok();
                } else if let Some(v) = comment.strip_prefix("HWS-MaxNoticeLead:") {
                    if lead_override.is_none() {
                        lead = v.trim().parse().ok().map(SimDuration::from_secs);
                    }
                } else if let Some(v) = comment.strip_prefix("MaxNodes:") {
                    if system_size.is_none() {
                        system_size = v.trim().parse().ok();
                    }
                }
                continue;
            }
            // First data line: headers are over.
            if !embedded {
                return Err(SwfError {
                    line: line_no,
                    message: "streaming replay requires an HWS-Embedded export \
                              (plain SWF class assignment is a whole-file protocol; \
                              convert via import_swf + to_swf_writer)"
                        .into(),
                });
            }
            peeked = Some(parse_embedded_line(line, line_no)?);
            break;
        }
        let system_size = system_size.ok_or(SwfError {
            line: 0,
            message: "missing HWS-SystemSize / MaxNodes header".into(),
        })?;
        let lead = lead.ok_or(SwfError {
            line: 0,
            message: "missing HWS-MaxNoticeLead header (pre-scan the file or \
                      supply the bound via from_reader_with_lead)"
                .into(),
        })?;
        Ok(SwfStreamSource {
            reader,
            line: line_no,
            system_size,
            lead,
            peeked,
            last_key: None,
            done: false,
        })
    }

    fn read_data_line(&mut self) -> Option<JobSpec> {
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self
                .reader
                .read_line(&mut buf)
                .unwrap_or_else(|e| panic!("SWF stream line {}: read error: {e}", self.line + 1));
            if n == 0 {
                return None;
            }
            self.line += 1;
            let line = buf.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            return Some(parse_embedded_line(line, self.line).unwrap_or_else(|e| panic!("{e}")));
        }
    }
}

impl<R: BufRead> JobSource for SwfStreamSource<R> {
    fn system_size(&self) -> u32 {
        self.system_size
    }

    fn max_notice_lead(&self) -> SimDuration {
        self.lead
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        if self.done {
            return None;
        }
        let job = match self.peeked.take().or_else(|| self.read_data_line()) {
            Some(j) => j,
            None => {
                self.done = true;
                return None;
            }
        };
        if let Err(e) = job.validate(self.system_size) {
            panic!("SWF stream line {}: invalid job: {e}", self.line);
        }
        let key = (job.submit, job.id.0);
        if let Some(last) = self.last_key {
            assert!(
                last <= key,
                "SWF stream line {}: jobs out of (submit, id) order",
                self.line
            );
        }
        if let Some(n) = &job.notice {
            assert!(
                job.submit.since(n.notice_time) <= self.lead,
                "SWF stream line {}: notice lead exceeds declared bound",
                self.line
            );
        }
        self.last_key = Some(key);
        Some(job)
    }
}

/// One O(1)-memory pass over an embedded export computing the
/// `max(submit − notice_time)` bound, for files predating the
/// `HWS-MaxNoticeLead` header.
///
/// # Errors
///
/// IO failures or malformed data lines.
pub fn scan_max_notice_lead<R: BufRead>(reader: R) -> Result<SimDuration, SwfError> {
    let mut max = SimDuration::ZERO;
    for (idx, line) in reader.lines().enumerate() {
        let ln = idx + 1;
        let line = line.map_err(|e| SwfError {
            line: ln,
            message: format!("read error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let job = parse_embedded_line(line, ln)?;
        if let Some(n) = &job.notice {
            max = max.max(job.submit.since(n.notice_time));
        }
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;
    use crate::swf::{to_swf, SwfExportConfig};

    fn embedded(trace: &Trace) -> String {
        to_swf(trace, &SwfExportConfig::default())
    }

    fn drain(mut src: impl JobSource) -> Vec<JobSpec> {
        std::iter::from_fn(|| src.next_job()).collect()
    }

    #[test]
    fn materialized_source_yields_trace_in_order() {
        let tr = TraceConfig::tiny().generate(3);
        let jobs = drain(MaterializedSource::new(&tr));
        assert_eq!(jobs, tr.jobs);
    }

    #[test]
    fn stream_source_matches_materialized() {
        let tr = TraceConfig::tiny().generate(5);
        let swf = embedded(&tr);
        let src = SwfStreamSource::from_reader(swf.as_bytes()).expect("headers");
        assert_eq!(src.system_size(), tr.system_size);
        assert_eq!(src.max_notice_lead(), tr.max_notice_lead());
        assert_eq!(drain(src), tr.jobs);
    }

    #[test]
    fn stream_source_carries_notice_lead_header() {
        let tr = TraceConfig::tiny().generate(1);
        assert!(
            tr.max_notice_lead() > SimDuration::ZERO,
            "tiny seed 1 must contain noticed on-demand jobs"
        );
        let swf = embedded(&tr);
        assert!(swf.contains("; HWS-MaxNoticeLead: "));
        let src = SwfStreamSource::from_reader(swf.as_bytes()).expect("headers");
        assert_eq!(src.max_notice_lead(), tr.max_notice_lead());
    }

    #[test]
    fn stream_source_rejects_plain_exports() {
        let tr = TraceConfig::tiny().generate(2);
        let plain = to_swf(
            &tr,
            &SwfExportConfig {
                embed_classes: false,
                procs_per_node: 1,
            },
        );
        let err = SwfStreamSource::from_reader(plain.as_bytes()).unwrap_err();
        assert!(err.message.contains("HWS-Embedded"), "{err}");
    }

    #[test]
    fn missing_lead_header_is_rejected_without_prescan() {
        let tr = TraceConfig::tiny().generate(2);
        let swf: String = embedded(&tr)
            .lines()
            .filter(|l| !l.starts_with("; HWS-MaxNoticeLead"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = SwfStreamSource::from_reader(swf.as_bytes()).unwrap_err();
        assert!(err.message.contains("HWS-MaxNoticeLead"), "{err}");
        // The scan fallback computes the exact bound.
        let lead = scan_max_notice_lead(swf.as_bytes()).expect("scan");
        assert_eq!(lead, tr.max_notice_lead());
        let src =
            SwfStreamSource::from_reader_with_lead(swf.as_bytes(), lead).expect("explicit lead");
        assert_eq!(drain(src), tr.jobs);
    }

    #[test]
    fn open_falls_back_to_prescan_for_old_exports() {
        let tr = TraceConfig::tiny().generate(1);
        let swf: String = embedded(&tr)
            .lines()
            .filter(|l| !l.starts_with("; HWS-MaxNoticeLead"))
            .map(|l| format!("{l}\n"))
            .collect();
        let dir = std::env::temp_dir().join(format!("hws_src_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("old_export.swf");
        std::fs::write(&path, swf).expect("write");
        let src = SwfStreamSource::open(&path).expect("open with prescan");
        assert_eq!(src.max_notice_lead(), tr.max_notice_lead());
        assert_eq!(drain(src), tr.jobs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "out of (submit, id) order")]
    fn stream_source_panics_on_disordered_jobs() {
        let tr = TraceConfig::tiny().generate(4);
        let mut lines: Vec<String> = embedded(&tr).lines().map(String::from).collect();
        let first_data = lines.iter().position(|l| !l.starts_with(';')).unwrap();
        lines.swap(first_data, first_data + 1);
        let swf = lines.join("\n");
        let src = SwfStreamSource::from_reader(swf.as_bytes()).expect("headers");
        let _ = drain(src);
    }

    #[test]
    fn empty_archive_streams_no_jobs() {
        let swf = "; HWS-Embedded: 1\n; HWS-SystemSize: 64\n; HWS-MaxNoticeLead: 0\n";
        let src = SwfStreamSource::from_reader(swf.as_bytes()).expect("headers");
        assert_eq!(drain(src).len(), 0);
    }
}
