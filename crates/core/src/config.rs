//! Scheduler configuration: the mechanism matrix and all model constants.

use crate::ckpt::CkptConfig;
use crate::driver::{HooksHandle, MechanismHooks};
use crate::failure::FailureConfig;
use crate::policy::PolicyKind;
use hws_cluster::FederationConfig;
use hws_sim::SimDuration;
use hws_workload::OutageSchedule;
use std::fmt;

/// What the scheduler does when an on-demand advance notice arrives
/// (§III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NoticeStrategy {
    /// "Do nothing (N)" — ignore notices, handle everything at arrival.
    None,
    /// "Collect-until-actual-arrival (CUA)" — reserve free nodes at notice
    /// time, then collect nodes released by finishing jobs until the
    /// request is fulfilled or the job arrives.
    Cua,
    /// "Collect-until-predicted-arrival (CUP)" — like CUA, but additionally
    /// plans preemptions so the full allocation is ready at the predicted
    /// arrival: rigid victims are preempted right after their next
    /// checkpoint, malleable victims just before the predicted arrival.
    Cup,
}

/// What the scheduler does when an on-demand job actually arrives and the
/// reserved + free nodes are insufficient (§III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArrivalStrategy {
    /// "Preempt-at-actual-arrival (PAA)" — preempt running rigid/malleable
    /// jobs in ascending order of preemption overhead.
    Paa,
    /// "Shrink-preempt-at-actual-arrival (SPAA)" — if shrinking all running
    /// malleable jobs to their minimum sizes can supply the demand, shrink
    /// them evenly; otherwise fall back to PAA.
    Spaa,
}

/// A complete scheduling mechanism. `Ord` follows declaration order
/// (baseline first, then the hybrid matrix, then custom) so mechanisms can
/// key `BTreeMap`s — the what-if forecast API reports one predicted start
/// per mechanism that way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// Plain FCFS/EASY with no special treatment of any class (Table II).
    Baseline,
    /// One of the six hybrid mechanisms.
    Hybrid {
        notice: NoticeStrategy,
        arrival: ArrivalStrategy,
    },
    /// A user-registered mechanism: behavior comes from the
    /// [`MechanismHooks`] in [`SimConfig::hooks`] (see
    /// [`SimConfig::with_hooks`]).
    Custom,
}

impl Mechanism {
    pub const N_PAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::None,
        arrival: ArrivalStrategy::Paa,
    };
    pub const N_SPAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::None,
        arrival: ArrivalStrategy::Spaa,
    };
    pub const CUA_PAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::Cua,
        arrival: ArrivalStrategy::Paa,
    };
    pub const CUA_SPAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::Cua,
        arrival: ArrivalStrategy::Spaa,
    };
    pub const CUP_PAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::Cup,
        arrival: ArrivalStrategy::Paa,
    };
    pub const CUP_SPAA: Mechanism = Mechanism::Hybrid {
        notice: NoticeStrategy::Cup,
        arrival: ArrivalStrategy::Spaa,
    };

    /// The six mechanisms of the paper, in its presentation order.
    pub const ALL_SIX: [Mechanism; 6] = [
        Self::N_PAA,
        Self::N_SPAA,
        Self::CUA_PAA,
        Self::CUA_SPAA,
        Self::CUP_PAA,
        Self::CUP_SPAA,
    ];

    pub fn is_baseline(self) -> bool {
        matches!(self, Mechanism::Baseline)
    }

    pub fn notice(self) -> Option<NoticeStrategy> {
        match self {
            Mechanism::Hybrid { notice, .. } => Some(notice),
            Mechanism::Baseline | Mechanism::Custom => None,
        }
    }

    pub fn arrival(self) -> Option<ArrivalStrategy> {
        match self {
            Mechanism::Hybrid { arrival, .. } => Some(arrival),
            Mechanism::Baseline | Mechanism::Custom => None,
        }
    }

    /// Paper-style name, e.g. `CUA&SPAA`.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Baseline => "FCFS/EASY",
            Self::N_PAA => "N&PAA",
            Self::N_SPAA => "N&SPAA",
            Self::CUA_PAA => "CUA&PAA",
            Self::CUA_SPAA => "CUA&SPAA",
            Self::CUP_PAA => "CUP&PAA",
            Self::CUP_SPAA => "CUP&SPAA",
            Mechanism::Custom => "custom",
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ordering used when PAA picks preemption victims (ablation; the paper
/// uses ascending preemption overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimOrder {
    /// Ascending wasted node-seconds (the paper's choice).
    Overhead,
    /// Smallest jobs first.
    SizeAscending,
    /// Most recently started first (loses the least absolute progress).
    NewestFirst,
}

/// How SPAA distributes the shrink demand over running malleable jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShrinkStrategy {
    /// Water-filling: repeatedly take one node from the currently largest
    /// job (the paper's "shrink their sizes evenly").
    EvenWaterFill,
    /// Take proportionally to each job's shrinkable slack.
    Proportional,
}

/// All scheduler parameters. Defaults reproduce §IV-B.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub mechanism: Mechanism,
    pub policy: PolicyKind,
    /// EASY backfilling on/off (off = plain FCFS, for ablation).
    pub easy_backfill: bool,
    /// Allow backfilled jobs to squat on on-demand reservations
    /// ("the nodes reserved for on-demand jobs can be used to backfill").
    pub backfill_on_reserved: bool,
    pub ckpt: CkptConfig,
    /// Node-failure injection (extension; disabled by default — the paper's
    /// simulations are failure-free).
    pub failures: FailureConfig,
    /// Amazon-style warning granted to malleable jobs before preemption
    /// (§III-A: two minutes).
    pub malleable_warning: SimDuration,
    /// Reserved nodes are released this long after a missed predicted
    /// arrival (§IV-B: 10 minutes).
    pub reservation_timeout: SimDuration,
    /// An on-demand start within this delay of arrival counts as instant
    /// (the malleable-vacate floor; §IV-D metric 2).
    pub instant_threshold: SimDuration,
    pub victim_order: VictimOrder,
    pub shrink_strategy: ShrinkStrategy,
    /// Record wall-clock decision latency (Observation 10).
    pub measure_decisions: bool,
    /// Verify cluster invariants after every event (slow; tests only).
    pub paranoid_checks: bool,
    /// Record a schedule timeline (Gantt-renderable; small scenarios only —
    /// the log grows with every scheduling event).
    pub record_timeline: bool,
    /// Explicit mechanism hooks. `None` derives the standard composition
    /// from [`SimConfig::mechanism`]; `Some` overrides it entirely (set via
    /// [`SimConfig::with_hooks`]).
    pub hooks: Option<HooksHandle>,
    /// Federated multi-cluster dispatch: `None` (the default, and the
    /// paper's model) runs on one machine of `trace.system_size` nodes;
    /// `Some` splits the same total capacity into named shards behind a
    /// placement policy (set via [`SimConfig::federated`]). A one-shard
    /// federation reproduces the single-cluster run bitwise.
    pub federation: Option<FederationConfig>,
    /// Deterministic capacity-fault injection: node/shard drains, hard
    /// downs, and rejoins delivered through the event queue (extension;
    /// `None` — the default and the paper's model — runs outage-free and
    /// is bitwise-identical to builds without the outage engine). Set via
    /// [`SimConfig::with_outages`].
    pub outages: Option<OutageSchedule>,
    /// Testing oracle: schedule a scheduling pass for *every* pass request
    /// instead of coalescing same-tick requests into one `Ev::Pass`. The
    /// extra passes run back-to-back on unchanged state and start nothing,
    /// so results are bitwise-identical — the coalescing-equivalence
    /// proptest exercises both ways. Never set in production paths.
    #[doc(hidden)]
    pub pass_per_event: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mechanism: Mechanism::CUA_SPAA,
            policy: PolicyKind::Fcfs,
            easy_backfill: true,
            backfill_on_reserved: true,
            ckpt: CkptConfig::default(),
            failures: FailureConfig::default(),
            malleable_warning: SimDuration::from_secs(120),
            reservation_timeout: SimDuration::from_mins(10),
            instant_threshold: SimDuration::from_secs(120),
            victim_order: VictimOrder::Overhead,
            shrink_strategy: ShrinkStrategy::EvenWaterFill,
            measure_decisions: true,
            paranoid_checks: false,
            record_timeline: false,
            hooks: None,
            federation: None,
            outages: None,
            pass_per_event: false,
        }
    }
}

impl SimConfig {
    /// The paper's Table II baseline.
    pub fn baseline() -> Self {
        SimConfig {
            mechanism: Mechanism::Baseline,
            ..Default::default()
        }
    }

    /// Select one of the built-in mechanisms (baseline or the six hybrid
    /// ones).
    ///
    /// # Panics
    ///
    /// Panics on [`Mechanism::Custom`], which carries no behavior by
    /// itself — use [`SimConfig::with_hooks`] instead. Catching it here
    /// beats a panic deep inside a sweep worker thread.
    pub fn with_mechanism(m: Mechanism) -> Self {
        assert!(
            m != Mechanism::Custom,
            "Mechanism::Custom has no built-in behavior; use SimConfig::with_hooks(..)"
        );
        SimConfig {
            mechanism: m,
            ..Default::default()
        }
    }

    /// Register a custom mechanism: the driver consults `hooks` at every
    /// notice, prediction, and arrival decision point. See
    /// `examples/custom_policy.rs` for a seventh mechanism built this way.
    pub fn with_hooks<H: MechanismHooks + 'static>(hooks: H) -> Self {
        SimConfig {
            mechanism: Mechanism::Custom,
            hooks: Some(HooksHandle::new(hooks)),
            ..Default::default()
        }
    }

    pub fn ckpt_factor(mut self, f: f64) -> Self {
        self.ckpt = self.ckpt.with_factor(f);
        self
    }

    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    pub fn paranoid(mut self) -> Self {
        self.paranoid_checks = true;
        self
    }

    /// Enable node-failure injection with the given per-node MTBF.
    pub fn with_failures(mut self, node_mtbf_hours: f64) -> Self {
        self.failures = FailureConfig::with_mtbf_hours(node_mtbf_hours);
        self
    }

    /// Record a renderable schedule timeline.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Dispatch over a federation of cluster shards instead of one
    /// machine. The shard sizes must sum to the trace's system size
    /// (checked at run start).
    pub fn federated(mut self, federation: FederationConfig) -> Self {
        self.federation = Some(federation);
        self
    }

    /// Inject the given outage schedule: drains, hard downs, and rejoins
    /// are delivered through the event queue at their scheduled times, so
    /// replays stay bitwise-reproducible. The schedule's shard/node
    /// coordinates must fit the backend (checked at run start).
    pub fn with_outages(mut self, schedule: OutageSchedule) -> Self {
        self.outages = Some(schedule);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_mechanisms_have_paper_names() {
        let names: Vec<&str> = Mechanism::ALL_SIX.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"]
        );
    }

    #[test]
    fn mechanism_accessors() {
        assert!(Mechanism::Baseline.is_baseline());
        assert_eq!(Mechanism::Baseline.notice(), None);
        assert_eq!(Mechanism::CUP_PAA.notice(), Some(NoticeStrategy::Cup));
        assert_eq!(Mechanism::CUP_PAA.arrival(), Some(ArrivalStrategy::Paa));
        assert_eq!(Mechanism::N_SPAA.arrival(), Some(ArrivalStrategy::Spaa));
    }

    #[test]
    fn defaults_follow_section_4b() {
        let c = SimConfig::default();
        assert_eq!(c.malleable_warning, SimDuration::from_secs(120));
        assert_eq!(c.reservation_timeout, SimDuration::from_mins(10));
        assert!(c.easy_backfill);
        assert!(c.backfill_on_reserved);
        assert_eq!(c.victim_order, VictimOrder::Overhead);
    }

    #[test]
    fn baseline_config() {
        assert!(SimConfig::baseline().mechanism.is_baseline());
        assert!(!SimConfig::with_mechanism(Mechanism::N_PAA)
            .mechanism
            .is_baseline());
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Mechanism::CUA_SPAA.to_string(), "CUA&SPAA");
    }

    #[test]
    #[should_panic(expected = "use SimConfig::with_hooks")]
    fn custom_mechanism_without_hooks_is_rejected_early() {
        let _ = SimConfig::with_mechanism(Mechanism::Custom);
    }
}
