//! The incrementally maintained ordered waiting queue.
//!
//! Historically every scheduling pass re-sorted the waiting set from
//! scratch — O(Q log Q) key computations and comparisons *per event* once
//! passes coalesce to one per tick. [`WaitQueue`] keeps the waiting jobs
//! in a `BTreeSet<(QueueKey, JobId)>` that is updated only on the
//! priority-relevant transitions:
//!
//! * **submit / resubmit** (failure, preemption, drain expiry, outage
//!   interrupt) — insert;
//! * **start / cancel / infeasibility sweep** — remove;
//! * **`od_front` membership flips** — an arrived on-demand job changes
//!   key *class*, so membership must be final before the insert and the
//!   entry must be removed before the flip (both orderings are enforced at
//!   the call sites; the paranoid oracle below catches violations).
//!
//! ## Key epochs (time-varying policies)
//!
//! Static policies ([`PolicyKind::is_time_varying`] = false: FCFS, SJF,
//! LJF) have keys that never go stale, so the index order is the pass
//! order for free. Aging policies (WFP3) score by waiting time: their keys
//! are stamped with the *epoch* — the instant the score was evaluated —
//! and [`SimCore::refresh_queue_epoch`] re-keys the whole index at `now`
//! before a pass reads it. Between passes the stale epoch is harmless:
//! inserts and removes both compute keys at the *stored* epoch, so every
//! entry is found under exactly the key it was inserted with.
//!
//! ## Invariant
//!
//! The index holds exactly the live jobs with [`Status::Waiting`], each
//! under `queue_key(policy, spec, od_front ∋ j, epoch)`. Under
//! `paranoid_checks` this is cross-validated after every event against a
//! from-scratch re-sort oracle ([`SimCore::check_waitq_invariant`]).

use super::core::{Scratch, SimCore};
use crate::jobstate::Status;
use crate::policy::{queue_key, QueueKey};
use hws_cluster::ClusterBackend;
use hws_sim::SimTime;
use hws_workload::JobId;
use std::collections::BTreeSet;

/// Ordered index over the waiting jobs; see the module docs.
#[derive(Debug)]
pub(super) struct WaitQueue {
    index: BTreeSet<(QueueKey, JobId)>,
    /// Instant the time-varying score components were evaluated at.
    /// Meaningless (and never advanced) for static policies. The policy
    /// itself lives in `SimConfig`; every key is computed there.
    epoch: SimTime,
}

impl WaitQueue {
    pub(super) fn new() -> Self {
        WaitQueue {
            index: BTreeSet::new(),
            epoch: SimTime::ZERO,
        }
    }

    #[inline]
    pub(super) fn len(&self) -> usize {
        self.index.len()
    }

    #[inline]
    pub(super) fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entries in priority order (the pass order).
    #[inline]
    pub(super) fn iter(&self) -> impl Iterator<Item = &(QueueKey, JobId)> {
        self.index.iter()
    }

    /// Waiting job ids in priority order.
    #[inline]
    pub(super) fn ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.index.iter().map(|&(_, j)| j)
    }

    /// The instant the current keys were evaluated at.
    #[inline]
    pub(super) fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// Restore-path epoch injection (see `driver::snapshot`).
    pub(super) fn set_epoch(&mut self, epoch: SimTime) {
        self.epoch = epoch;
    }

    /// Insert an entry; returns false if it was already present (callers
    /// treat that as corruption — see [`SimCore::enqueue_waiting`]).
    #[inline]
    pub(super) fn insert(&mut self, key: QueueKey, j: JobId) -> bool {
        self.index.insert((key, j))
    }

    /// Remove the entry `(key, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the entry is absent: the caller computed a key that does
    /// not match what the job was inserted under, which would silently
    /// leave a stale entry behind — corruption, not a recoverable state.
    #[inline]
    pub(super) fn remove(&mut self, key: QueueKey, j: JobId) {
        assert!(
            self.index.remove(&(key, j)),
            "waiting-queue index out of sync: {j} not found under its computed key"
        );
    }

    /// Drop all entries (epoch rebuild; the caller re-inserts).
    fn clear(&mut self) {
        self.index.clear();
    }
}

impl<B: ClusterBackend> SimCore<B> {
    /// The key waiting job `j` is (or would be) indexed under *right now*:
    /// current `od_front` membership, current epoch. Every insert and
    /// remove goes through this, so entries are always found.
    #[inline]
    pub(super) fn wait_key(&self, j: JobId) -> QueueKey {
        queue_key(
            self.cfg.policy,
            self.spec(j),
            self.od_front.contains(&j),
            self.queue.epoch(),
        )
    }

    /// Index a job that just became [`Status::Waiting`]. `od_front`
    /// membership must already be final for this job.
    pub(super) fn enqueue_waiting(&mut self, j: JobId) {
        debug_assert_eq!(self.st(j).status, Status::Waiting);
        let key = self.wait_key(j);
        let fresh = self.queue.insert(key, j);
        debug_assert!(fresh, "{j} enqueued twice");
    }

    /// Unindex a waiting job (cancel, infeasibility sweep). Must run
    /// *before* its `od_front` membership or status changes.
    pub(super) fn dequeue_waiting(&mut self, j: JobId) {
        let key = self.wait_key(j);
        self.queue.remove(key, j);
    }

    /// Re-key the index at `now` for aging policies; a no-op for static
    /// policies and when the epoch is already current. Same O(Q log Q)
    /// asymptotics as the historical per-pass re-sort — aging scores
    /// genuinely change with every tick, so there is nothing incremental
    /// to exploit — but only aging policies pay it.
    pub(super) fn refresh_queue_epoch(&mut self, now: SimTime) {
        if !self.cfg.policy.is_time_varying() || self.queue.epoch() == now {
            return;
        }
        let mut ids = std::mem::take(&mut self.scratch.ordered);
        ids.extend(self.queue.ids());
        self.queue.clear();
        self.queue.set_epoch(now);
        for &j in &ids {
            let key = self.wait_key(j);
            self.queue.insert(key, j);
        }
        Scratch::stow(&mut self.scratch.ordered, ids);
    }

    /// Paranoid cross-check: the maintained index must equal a
    /// from-scratch full re-sort of the live waiting jobs — the historical
    /// implementation, kept as the oracle the incremental structure is
    /// proptested against.
    pub(super) fn check_waitq_invariant(&self) {
        let mut oracle: Vec<(QueueKey, JobId)> = Vec::new();
        self.table.for_each_live(|spec, st| {
            if st.status == Status::Waiting {
                let key = queue_key(
                    self.cfg.policy,
                    spec,
                    self.od_front.contains(&spec.id),
                    self.queue.epoch(),
                );
                oracle.push((key, spec.id));
            }
        });
        oracle.sort_unstable();
        assert!(
            self.queue.iter().eq(oracle.iter()),
            "waiting-queue index drifted from the re-sort oracle:\n  index:  {:?}\n  oracle: {:?}",
            self.queue.iter().collect::<Vec<_>>(),
            oracle
        );
    }
}
