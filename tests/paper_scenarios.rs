//! Miniature versions of the paper's headline claims, checked as tests so
//! regressions in the mechanisms are caught without running the full
//! experiment grid.

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;

/// Average over a few seeds at the `small` scale.
fn averaged(cfg: &SimConfig, tcfg: &TraceConfig, seeds: u64) -> Metrics {
    let mut avg = MetricsAvg::new();
    for s in 0..seeds {
        avg.push(&Simulator::run_trace(cfg, &tcfg.generate(s)).metrics);
    }
    avg.mean()
}

#[test]
fn observation_1_instant_start_and_utilization() {
    let tcfg = TraceConfig::small();
    let base = averaged(&SimConfig::baseline(), &tcfg, 4);
    let hybrid = averaged(&SimConfig::with_mechanism(Mechanism::CUA_SPAA), &tcfg, 4);
    // Instant start rate jumps dramatically (paper: 22% → 98%).
    assert!(
        hybrid.instant_start_rate > base.instant_start_rate + 0.3,
        "hybrid {} vs base {}",
        hybrid.instant_start_rate,
        base.instant_start_rate
    );
}

#[test]
fn observation_3_spaa_protects_malleable_jobs() {
    let tcfg = TraceConfig::small();
    let paa = averaged(&SimConfig::with_mechanism(Mechanism::CUA_PAA), &tcfg, 4);
    let spaa = averaged(&SimConfig::with_mechanism(Mechanism::CUA_SPAA), &tcfg, 4);
    assert!(
        spaa.malleable.preemption_ratio <= paa.malleable.preemption_ratio + 1e-9,
        "SPAA {} vs PAA {}",
        spaa.malleable.preemption_ratio,
        paa.malleable.preemption_ratio
    );
}

#[test]
fn observation_6_malleability_incentive() {
    // Under the collecting mechanisms, declaring malleability should pay
    // off: malleable turnaround below rigid turnaround.
    let tcfg = TraceConfig::small();
    for mech in [Mechanism::CUA_PAA, Mechanism::CUA_SPAA] {
        let m = averaged(&SimConfig::with_mechanism(mech), &tcfg, 5);
        assert!(
            m.malleable.avg_turnaround_h < m.rigid.avg_turnaround_h,
            "{mech}: malleable {} !< rigid {}",
            m.malleable.avg_turnaround_h,
            m.rigid.avg_turnaround_h
        );
    }
}

#[test]
fn observation_8_malleable_preempted_more_than_rigid() {
    // Malleable preemption is cheaper, so the overhead-ordered victim list
    // puts malleable jobs first.
    let tcfg = TraceConfig::small();
    let m = averaged(&SimConfig::with_mechanism(Mechanism::N_PAA), &tcfg, 5);
    assert!(
        m.malleable.preemption_ratio > m.rigid.preemption_ratio,
        "malleable {} !> rigid {}",
        m.malleable.preemption_ratio,
        m.rigid.preemption_ratio
    );
}

#[test]
fn observation_10_decisions_are_fast() {
    let tcfg = TraceConfig::small();
    for mech in Mechanism::ALL_SIX {
        let m = averaged(&SimConfig::with_mechanism(mech), &tcfg, 2);
        assert!(
            m.decision_max_us < 10_000.0,
            "{mech}: max decision {} µs exceeds the paper's 10 ms bound",
            m.decision_max_us
        );
    }
}

#[test]
fn observation_13_frequent_checkpoints_cut_preemption_loss() {
    // Fig. 7: checkpointing twice as often as Daly reduces the wasted
    // cycles caused by preemptions (here measured as occupancy − useful).
    let tcfg = TraceConfig::small();
    let frequent = {
        let cfg = SimConfig::with_mechanism(Mechanism::N_PAA).ckpt_factor(0.25);
        averaged(&cfg, &tcfg, 5)
    };
    let sparse = {
        let cfg = SimConfig::with_mechanism(Mechanism::N_PAA).ckpt_factor(2.0);
        averaged(&cfg, &tcfg, 5)
    };
    let waste = |m: &Metrics| m.raw_occupancy - m.utilization;
    assert!(
        waste(&frequent) <= waste(&sparse) + 5e-3,
        "frequent {} vs sparse {}",
        waste(&frequent),
        waste(&sparse)
    );
}

#[test]
fn two_minute_warning_is_the_instant_floor() {
    // A machine fully covered by one malleable job at its minimum: the
    // on-demand job must wait exactly the 120 s drain — instant by the
    // paper's criterion but not strictly immediate.
    let jobs = vec![
        JobSpecBuilder::malleable(0)
            .size(100)
            .min_size(95)
            .work(D::from_secs(50_000))
            .estimate(D::from_secs(50_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(T::from_secs(1_000))
            .size(50)
            .work(D::from_secs(600))
            .estimate(D::from_secs(1_200))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let out = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::N_SPAA).paranoid(),
        &trace,
    );
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    assert_eq!(out.metrics.strict_instant_rate, 0.0);
    // Start delay is exactly the warning: TAT = 120 + work.
    let od_tat_s = out.metrics.on_demand.avg_turnaround_h * 3_600.0;
    assert!((od_tat_s - 720.0).abs() < 1.5, "od tat = {od_tat_s}");
}

#[test]
fn shrunk_lender_expands_back_after_od_completion() {
    let jobs = vec![
        JobSpecBuilder::malleable(0)
            .size(100)
            .min_size(20)
            .work(D::from_secs(10_000))
            .estimate(D::from_secs(10_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(T::from_secs(2_000))
            .size(40)
            .work(D::from_secs(1_000))
            .estimate(D::from_secs(2_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let out = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::N_SPAA).paranoid(),
        &trace,
    );
    assert_eq!(out.metrics.completed_jobs, 2);
    // The malleable job ran at 100 until t=2000 (2e5 of 1e6 node-seconds
    // done), at 60 nodes for ~1000 s (6e4), then back at 100. Total span:
    // 2000 + 1000 + (1e6 - 2e5 - 6e4)/100 = 10400 s. Far below the
    // no-expand scenario (2000 + 8e5/60 ≈ 15333 s).
    let tat_s = out.metrics.malleable.avg_turnaround_h * 3_600.0;
    assert!((tat_s - 10_400.0).abs() < 10.0, "malleable tat = {tat_s}");
}

#[test]
fn cua_notice_avoids_preemption_entirely_when_supply_suffices() {
    // Like the paper's Fig. 2 left half: a job releases enough nodes during
    // the notice window; CUA serves the on-demand job without touching
    // anything else.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(60)
            .work(D::from_secs(3_000))
            .estimate(D::from_secs(3_000))
            .build(),
        JobSpecBuilder::rigid(1)
            .size(40)
            .work(D::from_secs(50_000))
            .estimate(D::from_secs(50_000))
            .build(),
        JobSpecBuilder::on_demand(2)
            .submit_at(T::from_secs(4_000))
            .size(60)
            .work(D::from_secs(500))
            .estimate(D::from_secs(1_000))
            .notice(T::from_secs(2_500), T::from_secs(4_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA).paranoid();
    cfg.backfill_on_reserved = false;
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, 3);
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    assert!((out.metrics.strict_instant_rate - 1.0).abs() < 1e-9);
}
