//! # hws-core — the hybrid workload scheduler
//!
//! The paper's primary contribution: six mechanisms for co-scheduling
//! on-demand, rigid, and malleable jobs on one HPC system, layered on top
//! of a conventional queue policy (FCFS + EASY backfilling).
//!
//! A mechanism pairs an **advance-notice strategy** with an **arrival
//! strategy** (§III-B):
//!
//! | | PAA (preempt at arrival) | SPAA (shrink, then preempt) |
//! |---|---|---|
//! | **N** (ignore notices) | `N&PAA` | `N&SPAA` |
//! | **CUA** (collect released nodes until actual arrival) | `CUA&PAA` | `CUA&SPAA` |
//! | **CUP** (collect + plan preemptions for the predicted arrival) | `CUP&PAA` | `CUP&SPAA` |
//!
//! The [`driver::Simulator`] replays a trace (from `hws-workload`) over the
//! event kernel (`hws-sim`) against the resource manager (`hws-cluster`)
//! and reports `hws-metrics` results. `SimConfig::baseline()` reproduces
//! the paper's Table II baseline (plain FCFS/EASY, no special treatment).
//!
//! ```
//! use hws_core::{SimConfig, Mechanism, Simulator};
//! use hws_workload::TraceConfig;
//!
//! let trace = TraceConfig::tiny().generate(1);
//! let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
//! let outcome = Simulator::run_trace(&cfg, &trace);
//! assert!(outcome.metrics.utilization <= 1.0);
//! ```

pub mod backfill;
pub mod ckpt;
pub mod config;
#[cfg(feature = "count-allocs")]
pub mod counting_alloc;
pub mod driver;
pub mod failure;
pub mod jobstate;
pub mod jobtable;
pub mod mechanism;
pub mod policy;
pub mod timeline;

pub use ckpt::CkptConfig;
pub use config::{
    ArrivalStrategy, Mechanism, NoticeStrategy, ShrinkStrategy, SimConfig, VictimOrder,
};
pub use driver::{
    apply_knobs, config_for_knobs, replay_submission_log, standard_composition, Action,
    AdmissionView, ArrivalPlan, ArrivalPolicy, ArrivalView, CancelOutcome, CapabilityAware,
    CollectUntilArrival, CollectUntilPredicted, Composed, EnvSpec, Environment, EpisodeReport,
    HooksHandle, IgnoreNotices, JobStatus, MechanismHooks, NoticeDecision, NoticePolicy,
    NoticeView, Observation, PredictionView, PreemptAtArrival, SchedulerService, ShrinkThenPreempt,
    SimOutcome, Simulator, SubmitError, TunableHooks,
};
pub use failure::FailureConfig;
pub use jobtable::JobTable;
pub use policy::PolicyKind;
pub use timeline::{Timeline, TimelineEvent};
