//! Per-class (capability/capacity) breakdown of a run.
//!
//! Deliberately *outside* [`Metrics`](crate::Metrics), like the per-shard
//! [`ShardStat`](crate::ShardStat) breakdown: the committed `BENCH_*.json`
//! baselines serialise `Metrics`, and zero-capability runs must stay
//! byte-identical to the pre-capability two-class path. The breakdown is
//! attached to the run outcome separately and only surfaced by the
//! capability-aware reporting paths (`--bin capability`, tests).

use crate::record::{JobRecord, Recorder};
use hws_workload::JobClass;

/// Aggregate statistics of one job class over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassStats {
    /// Jobs of this class submitted.
    pub jobs: usize,
    pub completed: usize,
    pub killed: usize,
    /// Mean turnaround over completed jobs of this class, hours.
    pub avg_turnaround_h: f64,
    /// Mean queueing delay before first start, hours (completed jobs).
    pub avg_wait_h: f64,
    /// Jobs of this class preempted at least once (squatter evictions
    /// included).
    pub preempted_jobs: usize,
    /// Total preemption events absorbed by this class.
    pub preemption_events: u64,
}

/// The capability/capacity split of a run's job population.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassBreakdown {
    pub capacity: ClassStats,
    pub capability: ClassStats,
}

/// Incremental per-class fold behind [`ClassBreakdown`]. Same id-order
/// push contract as [`crate::MetricsAcc`]: a streaming recorder folds each
/// record at retirement, a retaining recorder folds everything at the end,
/// and the float-op sequences coincide.
#[derive(Debug, Clone, Default)]
pub struct ClassAcc {
    /// Per class: (stats, tat_sum, wait_sum).
    acc: [(ClassStats, f64, f64); 2],
}

impl ClassAcc {
    /// Fold one (final) job record.
    pub fn push(&mut self, r: &JobRecord) {
        let slot = match r.class {
            JobClass::Capacity => &mut self.acc[0],
            JobClass::Capability => &mut self.acc[1],
        };
        slot.0.jobs += 1;
        if r.preemptions > 0 {
            slot.0.preempted_jobs += 1;
        }
        slot.0.preemption_events += u64::from(r.preemptions);
        if r.killed {
            slot.0.killed += 1;
            return;
        }
        if let Some(tat) = r.turnaround() {
            slot.0.completed += 1;
            slot.1 += tat.as_hours_f64();
            if let Some(w) = r.wait() {
                slot.2 += w.as_hours_f64();
            }
        }
    }

    pub fn finish(&self) -> ClassBreakdown {
        let finish = |(mut s, tat_sum, wait_sum): (ClassStats, f64, f64)| {
            if s.completed > 0 {
                s.avg_turnaround_h = tat_sum / s.completed as f64;
                s.avg_wait_h = wait_sum / s.completed as f64;
            }
            s
        };
        ClassBreakdown {
            capacity: finish(self.acc[0]),
            capability: finish(self.acc[1]),
        }
    }
}

impl ClassBreakdown {
    /// Fold a recorder into the two per-class aggregates. Iterates in
    /// job-id order so the float sums are deterministic across runs; a
    /// streaming recorder's already-folded prefix is reused as-is.
    pub fn compute(rec: &Recorder) -> ClassBreakdown {
        let mut acc = rec.class_acc().cloned().unwrap_or_default();
        let mut sorted: Vec<_> = rec.unfolded().collect();
        sorted.sort_by_key(|(id, _)| *id);
        for (_, r) in sorted {
            acc.push(r);
        }
        acc.finish()
    }

    /// Whether the run saw any capability-class jobs at all.
    pub fn has_capability(&self) -> bool {
        self.capability.jobs > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_sim::SimTime;
    use hws_workload::{JobId, JobKind, NoticeCategory};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn splits_by_class() {
        let mut rec = Recorder::new(100);
        rec.job_submitted_full(
            JobId(1),
            JobKind::Rigid,
            JobClass::Capability,
            10,
            t(0),
            NoticeCategory::NoNotice,
        );
        rec.job_started(JobId(1), t(3_600));
        rec.job_finished(JobId(1), t(7_200));
        rec.job_submitted(JobId(2), JobKind::Rigid, 10, t(0));
        rec.job_started(JobId(2), t(0));
        rec.job_preempted(JobId(2));
        rec.job_preempted(JobId(2));
        rec.job_finished(JobId(2), t(3_600));

        let b = ClassBreakdown::compute(&rec);
        assert!(b.has_capability());
        assert_eq!(b.capability.jobs, 1);
        assert_eq!(b.capability.completed, 1);
        assert!((b.capability.avg_turnaround_h - 2.0).abs() < 1e-9);
        assert!((b.capability.avg_wait_h - 1.0).abs() < 1e-9);
        assert_eq!(b.capability.preempted_jobs, 0);
        assert_eq!(b.capacity.jobs, 1);
        assert_eq!(b.capacity.preempted_jobs, 1);
        assert_eq!(b.capacity.preemption_events, 2);
    }

    #[test]
    fn pure_capacity_run_has_no_capability_side() {
        let mut rec = Recorder::new(10);
        rec.job_submitted(JobId(1), JobKind::Malleable, 4, t(0));
        rec.job_started(JobId(1), t(0));
        rec.job_killed(JobId(1), t(50));
        let b = ClassBreakdown::compute(&rec);
        assert!(!b.has_capability());
        assert_eq!(b.capability, ClassStats::default());
        assert_eq!(b.capacity.killed, 1);
        assert_eq!(b.capacity.completed, 0);
    }
}
