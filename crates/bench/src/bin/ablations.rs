//! Ablation studies for the design choices DESIGN.md §6 calls out — these
//! go beyond the paper's figures and probe which pieces of the mechanism
//! design actually carry the results:
//!
//! 1. backfilling on reserved nodes on/off (§III-B1 footnote),
//! 2. PAA victim ordering: overhead (paper) vs size vs newest-first,
//! 3. SPAA shrink distribution: even water-fill (paper) vs proportional,
//! 4. the malleable two-minute warning: 0 s / 120 s / 600 s,
//! 5. queue policy under the best mechanism: FCFS vs SJF vs LJF vs WFP3.
//!
//! ```text
//! cargo run --release -p hws-bench --bin ablations
//! ```

use hws_bench::{run_averaged_source, seeds_from_env, Scale, TraceSource};
use hws_core::{Mechanism, PolicyKind, ShrinkStrategy, SimConfig, VictimOrder};
use hws_metrics::{Metrics, Table};
use hws_sim::SimDuration;

fn row_of(m: &Metrics) -> Vec<String> {
    vec![
        format!("{:.1}", m.avg_turnaround_h),
        format!("{:.1}", m.utilization * 100.0),
        format!("{:.1}", m.instant_start_rate * 100.0),
        format!("{:.2}", (m.raw_occupancy - m.utilization) * 100.0),
        format!(
            "{:.1}/{:.1}",
            m.rigid.preemption_ratio * 100.0,
            m.malleable.preemption_ratio * 100.0
        ),
    ]
}

const HEADER: [&str; 6] = [
    "variant",
    "TAT (h)",
    "util %",
    "instant %",
    "wasted %",
    "preempt r/m %",
];

fn main() {
    let scale = Scale::from_env();
    let seeds = seeds_from_env();
    let source = TraceSource::from_env(scale);
    eprintln!(
        "ablations: scale {scale:?}, {}, {seeds} seeds per cell",
        source.describe()
    );
    let with_name = |name: &str, m: &Metrics| {
        let mut cells = vec![name.to_string()];
        cells.extend(row_of(m));
        cells
    };

    // 1. Backfill on reserved nodes.
    let mut t = Table::new(HEADER.to_vec());
    for (name, on) in [
        ("reserved backfill ON (paper)", true),
        ("reserved backfill OFF", false),
    ] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
        cfg.backfill_on_reserved = on;
        t.row(with_name(name, &run_averaged_source(&cfg, &source, seeds)));
    }
    println!("ABLATION 1: backfilling on on-demand reservations (CUA&SPAA)");
    println!("{}", t.render());

    // 2. PAA victim ordering.
    let mut t = Table::new(HEADER.to_vec());
    for (name, order) in [
        ("overhead asc (paper)", VictimOrder::Overhead),
        ("size ascending", VictimOrder::SizeAscending),
        ("newest first", VictimOrder::NewestFirst),
    ] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
        cfg.victim_order = order;
        t.row(with_name(name, &run_averaged_source(&cfg, &source, seeds)));
    }
    println!("ABLATION 2: PAA victim ordering (N&PAA)");
    println!("{}", t.render());

    // 3. SPAA shrink distribution.
    let mut t = Table::new(HEADER.to_vec());
    for (name, strat) in [
        ("even water-fill (paper)", ShrinkStrategy::EvenWaterFill),
        ("proportional to slack", ShrinkStrategy::Proportional),
    ] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::N_SPAA);
        cfg.shrink_strategy = strat;
        t.row(with_name(name, &run_averaged_source(&cfg, &source, seeds)));
    }
    println!("ABLATION 3: SPAA shrink distribution (N&SPAA)");
    println!("{}", t.render());

    // 4. Malleable warning duration.
    let mut t = Table::new(HEADER.to_vec());
    for secs in [0u64, 120, 600] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
        cfg.malleable_warning = SimDuration::from_secs(secs);
        // Keep the instant criterion fixed at the paper's 2 minutes so the
        // variants are comparable.
        cfg.instant_threshold = SimDuration::from_secs(120);
        let label = format!(
            "{secs} s warning{}",
            if secs == 120 { " (paper)" } else { "" }
        );
        t.row(with_name(
            &label,
            &run_averaged_source(&cfg, &source, seeds),
        ));
    }
    println!("ABLATION 4: malleable preemption warning (N&PAA)");
    println!("{}", t.render());

    // 5. Queue policy under CUA&SPAA.
    let mut t = Table::new(HEADER.to_vec());
    for p in PolicyKind::ALL {
        let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA).policy(p);
        let label = format!(
            "{}{}",
            p.name(),
            if p == PolicyKind::Fcfs {
                " (paper)"
            } else {
                ""
            }
        );
        t.row(with_name(
            &label,
            &run_averaged_source(&cfg, &source, seeds),
        ));
    }
    println!("ABLATION 5: queue policy under CUA&SPAA");
    println!("{}", t.render());
}
