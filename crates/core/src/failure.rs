//! Node-failure injection (extension beyond the paper's evaluation).
//!
//! The paper's rigid jobs checkpoint at Daly's optimum *because of
//! failures*, yet its simulations never fail a node — Observation 13 then
//! shows preemptions, not failures, dominate interruptions. This module
//! closes the loop: with failures enabled, a running job draws an
//! exponential time-to-failure from the same per-node MTBF that sizes the
//! Daly interval. A failed rigid job restarts from its last checkpoint; a
//! failed malleable job loses only its setup (its finished tasks survive);
//! failed on-demand jobs restart like rigid ones.
//!
//! Draws are derived from a counter-based RNG (SplitMix64 over
//! `(seed, job, epoch)`), so failure times are deterministic, independent
//! of event-processing order, and stable under the event-epoch
//! invalidation scheme: every re-rate of a run (start, shrink, expand)
//! draws a fresh time-to-failure for the new epoch.

use hws_sim::SimDuration;
use hws_workload::JobId;

/// Failure-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    pub enabled: bool,
    /// Mean time between failures of a single node, hours. A job on `n`
    /// nodes fails `n×` as often.
    pub node_mtbf_hours: f64,
    /// Stream seed; distinct seeds give independent failure processes.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            enabled: false,
            node_mtbf_hours: 24.0 * 365.0,
            seed: 0,
        }
    }
}

impl FailureConfig {
    pub fn with_mtbf_hours(hours: f64) -> Self {
        assert!(hours > 0.0);
        FailureConfig {
            enabled: true,
            node_mtbf_hours: hours,
            seed: 0,
        }
    }
}

/// SplitMix64 — tiny counter-based generator, good enough for independent
/// exponential draws keyed by (seed, job, epoch).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1] from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
}

/// Time until the run of `job` (epoch `epoch`) on `size` nodes suffers a
/// node failure: exponential with mean `node_mtbf / size`. `None` when
/// injection is disabled or size is zero.
pub fn time_to_failure(
    cfg: &FailureConfig,
    job: JobId,
    epoch: u64,
    size: u32,
) -> Option<SimDuration> {
    if !cfg.enabled || size == 0 {
        return None;
    }
    let h = splitmix64(cfg.seed ^ splitmix64(job.0 ^ splitmix64(epoch)));
    let u = unit(h);
    let mean_s = cfg.node_mtbf_hours * 3_600.0 / f64::from(size);
    let ttf = -mean_s * u.ln();
    Some(SimDuration::from_secs(ttf.max(1.0).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_yields_none() {
        let cfg = FailureConfig::default();
        assert_eq!(time_to_failure(&cfg, JobId(1), 0, 128), None);
    }

    #[test]
    fn draws_are_deterministic_per_key() {
        let cfg = FailureConfig::with_mtbf_hours(100.0);
        let a = time_to_failure(&cfg, JobId(1), 3, 64);
        let b = time_to_failure(&cfg, JobId(1), 3, 64);
        assert_eq!(a, b);
        // Different epoch → a fresh draw.
        let c = time_to_failure(&cfg, JobId(1), 4, 64);
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a = FailureConfig {
            seed: 1,
            ..FailureConfig::with_mtbf_hours(100.0)
        };
        let b = FailureConfig {
            seed: 2,
            ..FailureConfig::with_mtbf_hours(100.0)
        };
        assert_ne!(
            time_to_failure(&a, JobId(9), 0, 32),
            time_to_failure(&b, JobId(9), 0, 32)
        );
    }

    #[test]
    fn empirical_mean_tracks_mtbf_over_size() {
        // MTBF 1000 h per node, 100 nodes → job MTBF 10 h = 36,000 s.
        let cfg = FailureConfig::with_mtbf_hours(1_000.0);
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|i| time_to_failure(&cfg, JobId(i), 0, 100).unwrap().as_secs() as f64)
            .sum::<f64>()
            / n as f64;
        let rel = (mean - 36_000.0).abs() / 36_000.0;
        assert!(rel < 0.03, "mean {mean}, relative error {rel}");
    }

    #[test]
    fn bigger_jobs_fail_sooner_on_average() {
        let cfg = FailureConfig::with_mtbf_hours(1_000.0);
        let avg = |size: u32| -> f64 {
            (0..5_000u64)
                .map(|i| time_to_failure(&cfg, JobId(i), 1, size).unwrap().as_secs() as f64)
                .sum::<f64>()
                / 5_000.0
        };
        assert!(avg(512) < avg(64) / 4.0);
    }

    #[test]
    fn ttf_is_strictly_positive() {
        let cfg = FailureConfig::with_mtbf_hours(0.001); // absurdly failure-prone
        for i in 0..1_000 {
            let t = time_to_failure(&cfg, JobId(i), 0, 4_096).unwrap();
            assert!(t.as_secs() >= 1);
        }
    }
}
