//! Property tests: arbitrary operation sequences never violate the
//! cluster's conservation invariants, and node accounting is exact.

use hws_cluster::Cluster;
use hws_workload::JobId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Allocate {
        job: u64,
        k: u32,
    },
    AllocateWithReserved {
        job: u64,
        k: u32,
    },
    Backfill {
        job: u64,
        k: u32,
        use_reserved: bool,
    },
    Release {
        job: u64,
    },
    Shrink {
        job: u64,
        k: u32,
    },
    Expand {
        job: u64,
        k: u32,
    },
    Reserve {
        holder: u64,
        k: u32,
    },
    ReleaseReservation {
        holder: u64,
    },
    TransferReserved {
        from: u64,
        to: u64,
        k: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..24u64, 1..16u32).prop_map(|(job, k)| Op::Allocate { job, k }),
        (0..24u64, 1..16u32).prop_map(|(job, k)| Op::AllocateWithReserved { job, k }),
        (0..24u64, 1..16u32, any::<bool>()).prop_map(|(job, k, use_reserved)| Op::Backfill {
            job,
            k,
            use_reserved
        }),
        (0..24u64).prop_map(|job| Op::Release { job }),
        (0..24u64, 1..8u32).prop_map(|(job, k)| Op::Shrink { job, k }),
        (0..24u64, 1..8u32).prop_map(|(job, k)| Op::Expand { job, k }),
        (24..32u64, 1..16u32).prop_map(|(holder, k)| Op::Reserve { holder, k }),
        (24..32u64).prop_map(|holder| Op::ReleaseReservation { holder }),
        (24..32u64, 24..32u64, 1..16u32).prop_map(|(from, to, k)| Op::TransferReserved {
            from,
            to,
            k
        }),
    ]
}

fn apply(c: &mut Cluster, op: &Op) {
    match *op {
        Op::Allocate { job, k } => {
            if !c.is_running(JobId(job)) {
                let _ = c.allocate(JobId(job), k);
            }
        }
        Op::AllocateWithReserved { job, k } => {
            if !c.is_running(JobId(job)) {
                let _ = c.allocate_with_reserved(JobId(job), k);
            }
        }
        Op::Backfill {
            job,
            k,
            use_reserved,
        } => {
            if !c.is_running(JobId(job)) {
                let _ = c.allocate_backfill(JobId(job), k, |_| use_reserved);
            }
        }
        Op::Release { job } => {
            let _ = c.release(JobId(job));
        }
        Op::Shrink { job, k } => {
            if c.size_of(JobId(job)) > k {
                let _ = c.shrink(JobId(job), k);
            }
        }
        Op::Expand { job, k } => {
            if c.is_running(JobId(job)) {
                let _ = c.expand(JobId(job), k);
            }
        }
        Op::Reserve { holder, k } => {
            let _ = c.reserve(JobId(holder), k);
        }
        Op::ReleaseReservation { holder } => {
            let _ = c.release_reservation(JobId(holder));
        }
        Op::TransferReserved { from, to, k } => {
            let _ = c.transfer_reserved(JobId(from), JobId(to), k);
        }
    }
}

/// Oracle check: the incremental `(plain, squatted)` counters, the squatter
/// index, and the reserved-idle total must exactly match what a full node
/// scan reports, for every job and holder id the op space can produce.
fn assert_matches_scan_oracle(c: &Cluster) {
    let mut reserved_idle_scanned = 0;
    for id in (0..64).map(JobId) {
        assert_eq!(
            c.split_of(id),
            c.split_of_scanned(id),
            "split counters diverged for {id}"
        );
        assert_eq!(
            c.squatters(id),
            c.squatters_scanned(id),
            "squatter index diverged for holder {id}"
        );
        reserved_idle_scanned += c.reserved_idle_count(id);
    }
    assert_eq!(c.total_reserved_idle(), reserved_idle_scanned);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn invariants_hold_under_arbitrary_op_sequences(
        n in 8..64u32,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut c = Cluster::new(n);
        for op in &ops {
            apply(&mut c, op);
            prop_assert_eq!(c.check_invariants(), Ok(()));
        }
    }

    /// The incremental accounting is exact: after every operation of an
    /// arbitrary allocate/release/reserve/backfill/shrink/expand/transfer
    /// sequence, `split_of`, `squatters`, and `total_reserved_idle` agree
    /// with a full-node-scan oracle.
    #[test]
    fn incremental_counters_match_scan_oracle(
        n in 8..64u32,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut c = Cluster::new(n);
        assert_matches_scan_oracle(&c);
        for op in &ops {
            apply(&mut c, op);
            assert_matches_scan_oracle(&c);
        }
        // And after tearing everything down.
        let running: Vec<JobId> = c.running_jobs().collect();
        for job in running {
            c.release(job);
        }
        for holder in (0..64).map(JobId) {
            c.release_reservation(holder);
        }
        assert_matches_scan_oracle(&c);
        prop_assert_eq!(c.total_reserved_idle(), 0);
    }

    #[test]
    fn releasing_everything_restores_full_capacity(
        n in 8..64u32,
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut c = Cluster::new(n);
        for op in &ops {
            apply(&mut c, op);
        }
        let running: Vec<JobId> = c.running_jobs().collect();
        for job in running {
            c.release(job);
        }
        for holder in (0..64).map(JobId) {
            c.release_reservation(holder);
        }
        prop_assert_eq!(c.free_count(), n);
        prop_assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    fn allocation_sizes_are_exact(
        n in 8..64u32,
        sizes in proptest::collection::vec(1..10u32, 1..10),
    ) {
        let mut c = Cluster::new(n);
        let mut allocated = 0u32;
        for (i, &k) in sizes.iter().enumerate() {
            if let Some(nodes) = c.allocate(JobId(i as u64), k) {
                prop_assert_eq!(nodes.len() as u32, k);
                allocated += k;
            }
            prop_assert_eq!(c.free_count(), n - allocated);
        }
    }
}
