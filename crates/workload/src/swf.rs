//! Import/export of the **Standard Workload Format** (SWF) used by the
//! Parallel Workloads Archive — the de-facto interchange format for real
//! HPC traces (the Theta trace the paper uses is Cobalt-native, but its
//! published statistics line up with what an SWF export would carry).
//!
//! An SWF line has 18 whitespace-separated fields; this importer consumes
//! the ones the hybrid-scheduling model needs:
//!
//! | # | field | use |
//! |---|-------|-----|
//! | 1 | job number | id (re-labelled in submit order) |
//! | 2 | submit time (s) | `submit` |
//! | 4 | run time (s) | `work` |
//! | 5 | allocated processors | `size` (fallback: field 8) |
//! | 8 | requested processors | `size` when field 5 is absent |
//! | 9 | requested time (s) | `estimate` |
//! | 11 | status | skip non-completed jobs (configurable) |
//! | 13 | group id | project (fallback: field 12, user id) |
//!
//! SWF traces do not record job *types* — real systems treat everything as
//! rigid batch — so the importer applies the paper's §IV-A protocol: group
//! jobs by project, assign whole projects to on-demand / rigid / malleable
//! classes at the configured ratios, reassign oversized on-demand jobs,
//! and synthesise advance notices from the requested mix. All of it is
//! deterministic in the import seed.
//!
//! ## Streaming
//!
//! [`import_swf_reader`] consumes any [`BufRead`] line by line, so a
//! million-line archive log never has to fit in one in-memory `String`;
//! [`import_swf`] is a thin wrapper over it for in-memory text.
//!
//! ## Lossless export (`HWS-Embedded` extension)
//!
//! [`to_swf`] serialises a [`Trace`] back to SWF. In **embedded** mode
//! (the default) the otherwise-unused SWF fields carry the hybrid-model
//! attributes so `to_swf → import_swf` reproduces the trace byte-
//! identically — the file declares itself with a `; HWS-Embedded: 1`
//! header and the importer reconstructs jobs verbatim instead of running
//! the §IV-A protocol. In **plain** mode only the standard raw fields are
//! written (classes, notices, setup and minimum sizes are dropped), which
//! is how the bundled replay fixture mimics a real archive log. Field map
//! of the extension:
//!
//! | SWF field (standard meaning) | embedded use |
//! |---|---|
//! | 10 (requested memory) | [`NoticeCategory`] code 0–3 |
//! | 14 (executable number) | setup seconds |
//! | 15 (queue number) | [`JobKind`] code 1=rigid, 2=on-demand, 3=malleable; +4 tags the job [`JobClass::Capability`] (5=rigid, 7=malleable; 6 is rejected — on-demand jobs are always capacity class) |
//! | 16 (partition number) | malleable minimum size (nodes) |
//! | 17 (preceding job) | notice time (s), −1 when no notice |
//! | 18 (think time) | predicted arrival (s), −1 when no notice |
//!
//! Sizes in embedded mode are node counts (`procs_per_node` is ignored);
//! `; HWS-SystemSize:` and `; HWS-Horizon:` headers carry the remaining
//! [`Trace`] fields.

use crate::gen::NoticeMix;
use crate::ids::{JobId, ProjectId};
use crate::job::{JobClass, JobKind, JobSpec, NoticeCategory, NoticeSpec};
use crate::trace::Trace;
use hws_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::BufRead;

/// Import options.
#[derive(Debug, Clone)]
pub struct SwfImportConfig {
    /// Total nodes of the target system, used when the file carries no
    /// machine description of its own — a `; MaxNodes:` (or `; MaxProcs:`)
    /// header always wins, so a 128-node machine's log is never silently
    /// replayed at Theta scale. Jobs wider than the effective system are
    /// clamped.
    pub system_size: u32,
    /// Processors per node (SWF counts processors; Theta-style scheduling
    /// is node-granular). Sizes are divided by this and rounded up.
    pub procs_per_node: u32,
    /// Drop jobs whose SWF status is not 1 (completed). Jobs with the
    /// *unknown* status `-1` are dropped too unless
    /// [`SwfImportConfig::include_unknown_status`] is set.
    pub completed_only: bool,
    /// Keep jobs whose SWF status is `-1` (unknown) even when
    /// `completed_only` is set. Archive logs predating the status field
    /// mark every job `-1`; flip this on for those.
    pub include_unknown_status: bool,
    /// Fraction of projects assigned to each class (paper §IV-B defaults).
    pub od_project_frac: f64,
    pub rigid_project_frac: f64,
    /// Advance-notice mix for the synthesised on-demand notices.
    pub notice_mix: NoticeMix,
    /// Notice lead range.
    pub notice_lead: (SimDuration, SimDuration),
    /// Late-arrival window.
    pub late_window: SimDuration,
    /// Malleable minimum-size fraction.
    pub malleable_min_frac: f64,
    /// Setup-cost fractions (rigid / malleable), sampled uniformly.
    pub rigid_setup_frac: (f64, f64),
    pub malleable_setup_frac: (f64, f64),
    /// Seed for the type/notice assignment.
    pub seed: u64,
}

impl Default for SwfImportConfig {
    fn default() -> Self {
        SwfImportConfig {
            system_size: 4_392,
            procs_per_node: 1,
            completed_only: true,
            include_unknown_status: false,
            od_project_frac: 0.10,
            rigid_project_frac: 0.60,
            notice_mix: NoticeMix::W5,
            notice_lead: (SimDuration::from_mins(15), SimDuration::from_mins(30)),
            late_window: SimDuration::from_mins(30),
            malleable_min_frac: 0.2,
            rigid_setup_frac: (0.05, 0.10),
            malleable_setup_frac: (0.0, 0.05),
            seed: 0,
        }
    }
}

/// Export options for [`to_swf`].
#[derive(Debug, Clone)]
pub struct SwfExportConfig {
    /// Write the `HWS-Embedded` extension fields (lossless round-trip).
    /// When off, only the standard raw fields survive — classes, notices,
    /// setup costs, and malleable minimums are dropped, as in a real log.
    pub embed_classes: bool,
    /// Processors per node written to the file in plain mode (sizes are
    /// multiplied back to processor counts). Embedded mode always writes
    /// node counts.
    pub procs_per_node: u32,
}

impl Default for SwfExportConfig {
    fn default() -> Self {
        SwfExportConfig {
            embed_classes: true,
            procs_per_node: 1,
        }
    }
}

/// Import errors carry the offending line number (0 = whole-file error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

struct RawJob {
    submit: u64,
    runtime: u64,
    size: u32,
    estimate: u64,
    project: u32,
}

/// The SWF format defines exactly 18 fields and no parser here looks past
/// them, so splitting stops there and lands in a stack array — no per-line
/// heap allocation on the streaming-replay hot path.
const MAX_FIELDS: usize = 18;

fn parse_fields(line: &str, ln: usize, min: usize) -> Result<[&str; MAX_FIELDS], SwfError> {
    debug_assert!(min <= MAX_FIELDS);
    let mut f = [""; MAX_FIELDS];
    let mut n = 0;
    for w in line.split_whitespace() {
        if n == MAX_FIELDS {
            break;
        }
        f[n] = w;
        n += 1;
    }
    if n < min {
        return Err(SwfError {
            line: ln,
            message: format!("expected ≥{min} fields, got {n}"),
        });
    }
    Ok(f)
}

fn field_num(f: &[&str], i: usize, ln: usize, what: &str) -> Result<i64, SwfError> {
    let s = f[i];
    // Integer fast path: SWF fields are overwhelmingly plain integers, and
    // below 2^53 in magnitude the historical `parse::<f64>() as i64`
    // round-trip is exact — both paths yield the same value bit-for-bit
    // (15 decimal digits < 2^53). Fractional, huge, `+`-signed, or
    // malformed fields fall through to the float path, including its
    // error text.
    let digits = s.strip_prefix('-').unwrap_or(s);
    if !digits.is_empty() && digits.len() <= 15 && digits.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = s.parse::<i64>() {
            return Ok(v);
        }
    }
    s.parse::<f64>().map(|v| v as i64).map_err(|e| SwfError {
        line: ln,
        message: format!("{what}: {e}"),
    })
}

/// Parse SWF text into a [`Trace`]. Thin wrapper over the streaming
/// [`import_swf_reader`] for already-in-memory text.
///
/// # Errors
///
/// Returns a line-tagged [`SwfError`] for malformed data lines, unknown
/// embedded codes, or an imported trace that fails [`Trace::validate`]
/// (line 0).
pub fn import_swf(text: &str, cfg: &SwfImportConfig) -> Result<Trace, SwfError> {
    import_swf_reader(text.as_bytes(), cfg)
}

/// Streaming SWF import: consumes `reader` line by line (comment lines
/// `;` are skipped; malformed lines are errors) and applies the paper's
/// type-assignment protocol — or, for files carrying the `HWS-Embedded`
/// header, reconstructs the exported trace verbatim.
///
/// # Errors
///
/// Returns a line-tagged [`SwfError`] for IO failures, malformed data
/// lines, unknown embedded kind/category/class codes, or an imported
/// trace that fails [`Trace::validate`] (reported as line 0).
pub fn import_swf_reader<R: BufRead>(reader: R, cfg: &SwfImportConfig) -> Result<Trace, SwfError> {
    let mut raws: Vec<RawJob> = Vec::new();
    let mut embedded_jobs: Vec<JobSpec> = Vec::new();
    let mut embedded = false;
    let mut emb_system_size: Option<u32> = None;
    let mut emb_horizon: Option<u64> = None;
    let mut max_nodes: Option<u32> = None;
    let mut max_procs: Option<u64> = None;

    for (idx, line) in reader.lines().enumerate() {
        let ln = idx + 1;
        let line = line.map_err(|e| SwfError {
            line: ln,
            message: format!("read error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            let comment = comment.trim();
            if let Some(v) = comment.strip_prefix("HWS-Embedded:") {
                embedded = v.trim() == "1";
            } else if let Some(v) = comment.strip_prefix("HWS-SystemSize:") {
                emb_system_size = v.trim().parse().ok();
            } else if let Some(v) = comment.strip_prefix("HWS-Horizon:") {
                emb_horizon = v.trim().parse().ok();
            } else if let Some(v) = comment.strip_prefix("MaxNodes:") {
                max_nodes = v.trim().parse().ok();
            } else if let Some(v) = comment.strip_prefix("MaxProcs:") {
                max_procs = v.trim().parse().ok();
            }
            continue;
        }
        if embedded {
            embedded_jobs.push(parse_embedded_line(line, ln)?);
        } else if let Some(raw) = parse_plain_line(line, ln, cfg)? {
            raws.push(raw);
        }
    }

    // The log's own machine description wins over the configured fallback:
    // the standard `MaxNodes` header directly, or `MaxProcs` scaled by
    // `procs_per_node`. Replaying a 128-node machine's log must not
    // silently pretend it ran on Theta.
    let ppn = u64::from(cfg.procs_per_node.max(1));
    let system_size = max_nodes
        .or_else(|| max_procs.map(|p| u32::try_from(p.div_ceil(ppn)).unwrap_or(u32::MAX)))
        .unwrap_or(cfg.system_size)
        .max(1);
    let trace = if embedded {
        let horizon = emb_horizon.unwrap_or_else(|| {
            embedded_jobs
                .iter()
                .map(|j| j.submit.as_secs())
                .max()
                .unwrap_or(0)
                + 1
        });
        Trace::new(
            emb_system_size.unwrap_or(system_size),
            SimDuration::from_secs(horizon),
            embedded_jobs,
        )
    } else {
        assign_classes(raws, cfg, system_size)
    };
    trace.validate().map_err(|e| SwfError {
        line: 0,
        message: format!("imported trace invalid: {e}"),
    })?;
    Ok(trace)
}

/// Parse one standard SWF data line; `Ok(None)` means "filtered out"
/// (wrong status, cancelled before start, no processors).
fn parse_plain_line(
    line: &str,
    ln: usize,
    cfg: &SwfImportConfig,
) -> Result<Option<RawJob>, SwfError> {
    let f = parse_fields(line, ln, 13)?;
    let status = field_num(&f, 10, ln, "status")?;
    if cfg.completed_only && status != 1 && !(status == -1 && cfg.include_unknown_status) {
        return Ok(None);
    }
    let submit = field_num(&f, 1, ln, "submit")?.max(0) as u64;
    let runtime = field_num(&f, 3, ln, "runtime")?;
    if runtime <= 0 {
        return Ok(None); // cancelled before start
    }
    let alloc = field_num(&f, 4, ln, "allocated procs")?;
    let req = field_num(&f, 7, ln, "requested procs")?;
    let procs = if alloc > 0 { alloc } else { req };
    if procs <= 0 {
        return Ok(None);
    }
    let estimate = field_num(&f, 8, ln, "requested time")?;
    let gid = field_num(&f, 12, ln, "group id")?;
    let uid = field_num(&f, 11, ln, "user id")?;
    let project = if gid > 0 { gid } else { uid.max(0) } as u32;
    // Node count, unclamped: the effective system size (file header or
    // config) is only known once the whole file is read.
    let size = u32::try_from((procs as u64).div_ceil(u64::from(cfg.procs_per_node.max(1))))
        .unwrap_or(u32::MAX)
        .max(1);
    Ok(Some(RawJob {
        submit,
        runtime: runtime as u64,
        size,
        estimate: if estimate > 0 {
            estimate as u64
        } else {
            runtime as u64
        },
        project,
    }))
}

/// Parse one `HWS-Embedded` data line back into the exact [`JobSpec`] that
/// [`to_swf`] serialised (see the module docs for the field map).
pub(crate) fn parse_embedded_line(line: &str, ln: usize) -> Result<JobSpec, SwfError> {
    let f = parse_fields(line, ln, 18)?;
    let err = |message: String| SwfError { line: ln, message };
    let id = field_num(&f, 0, ln, "job number")?;
    if id < 1 {
        return Err(err(format!("embedded job number must be ≥1, got {id}")));
    }
    let (kind, class) = match field_num(&f, 14, ln, "kind (queue)")? {
        1 => (JobKind::Rigid, JobClass::Capacity),
        2 => (JobKind::OnDemand, JobClass::Capacity),
        3 => (JobKind::Malleable, JobClass::Capacity),
        5 => (JobKind::Rigid, JobClass::Capability),
        6 => {
            return Err(err(
                "on-demand jobs cannot be capability class (code 6)".into()
            ))
        }
        7 => (JobKind::Malleable, JobClass::Capability),
        other => return Err(err(format!("unknown embedded kind code {other}"))),
    };
    let category = match field_num(&f, 9, ln, "category (req mem)")? {
        0 => NoticeCategory::NoNotice,
        1 => NoticeCategory::Accurate,
        2 => NoticeCategory::Early,
        3 => NoticeCategory::Late,
        other => return Err(err(format!("unknown embedded category code {other}"))),
    };
    let notice_time = field_num(&f, 16, ln, "notice time (preceding job)")?;
    let predicted = field_num(&f, 17, ln, "predicted arrival (think time)")?;
    let notice = if notice_time >= 0 && predicted >= 0 {
        Some(NoticeSpec {
            notice_time: SimTime::from_secs(notice_time as u64),
            predicted_arrival: SimTime::from_secs(predicted as u64),
        })
    } else {
        None
    };
    let nonneg = |i: usize, what: &str| -> Result<u64, SwfError> {
        let v = field_num(&f, i, ln, what)?;
        if v < 0 {
            return Err(SwfError {
                line: ln,
                message: format!("{what} must be ≥0, got {v}"),
            });
        }
        Ok(v as u64)
    };
    Ok(JobSpec {
        id: JobId(id as u64 - 1),
        project: ProjectId(nonneg(12, "group id")? as u32),
        kind,
        submit: SimTime::from_secs(nonneg(1, "submit")?),
        size: nonneg(4, "size")? as u32,
        min_size: nonneg(15, "min size (partition)")? as u32,
        work: SimDuration::from_secs(nonneg(3, "runtime")?),
        estimate: SimDuration::from_secs(nonneg(8, "requested time")?),
        setup: SimDuration::from_secs(nonneg(13, "setup (executable)")?),
        notice,
        category,
        site_hint: None,
        class,
    })
}

/// The §IV-A protocol: assign whole projects to classes at the configured
/// ratios, reassign oversized on-demand jobs, synthesise advance notices.
/// `system_size` is the effective machine size (file header or config).
fn assign_classes(raws: Vec<RawJob>, cfg: &SwfImportConfig, system_size: u32) -> Trace {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5DEE_CE66);
    let mut projects: Vec<u32> = {
        let mut set: Vec<u32> = raws.iter().map(|r| r.project).collect();
        set.sort_unstable();
        set.dedup();
        set
    };
    for i in (1..projects.len()).rev() {
        let j = rng.random_range(0..=i);
        projects.swap(i, j);
    }
    // A zero fraction means *no* projects of that class — only round a
    // nonzero fraction up to at least one project, else a pure-batch
    // replay baseline would be impossible.
    let n_od = if cfg.od_project_frac > 0.0 {
        ((projects.len() as f64) * cfg.od_project_frac)
            .round()
            .max(1.0) as usize
    } else {
        0
    };
    let n_rigid = ((projects.len() as f64) * cfg.rigid_project_frac).round() as usize;
    let kind_of: HashMap<u32, JobKind> = projects
        .iter()
        .enumerate()
        .map(|(rank, &p)| {
            let kind = if rank < n_od {
                JobKind::OnDemand
            } else if rank < n_od + n_rigid {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
            (p, kind)
        })
        .collect();

    let mut jobs: Vec<JobSpec> = Vec::with_capacity(raws.len());
    for (i, r) in raws.into_iter().enumerate() {
        let size = r.size.clamp(1, system_size);
        let mut kind = kind_of.get(&r.project).copied().unwrap_or(JobKind::Rigid);
        if kind == JobKind::OnDemand && size > system_size / 2 {
            kind = if rng.random_range(0.0..1.0) < 0.5 {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
        }
        let setup_range = match kind {
            JobKind::Rigid => cfg.rigid_setup_frac,
            JobKind::Malleable => cfg.malleable_setup_frac,
            JobKind::OnDemand => (0.0, 0.0),
        };
        let frac = if setup_range.1 > setup_range.0 {
            rng.random_range(setup_range.0..setup_range.1)
        } else {
            setup_range.0
        };
        let min_size = if kind == JobKind::Malleable {
            ((size as f64 * cfg.malleable_min_frac).ceil() as u32).clamp(1, size)
        } else {
            size
        };
        let (submit, notice, category) = if kind == JobKind::OnDemand {
            synthesize_notice(&mut rng, cfg, SimTime::from_secs(r.submit))
        } else {
            (SimTime::from_secs(r.submit), None, NoticeCategory::NoNotice)
        };
        jobs.push(JobSpec {
            id: JobId(i as u64),
            project: ProjectId(r.project),
            kind,
            submit,
            size,
            min_size,
            work: SimDuration::from_secs(r.runtime),
            estimate: SimDuration::from_secs(r.estimate.max(r.runtime)),
            setup: SimDuration::from_secs((r.runtime as f64 * frac).round() as u64),
            notice,
            category,
            site_hint: None,
            class: JobClass::Capacity,
        });
    }
    jobs.sort_by_key(|j| (j.submit, j.id));
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    // The horizon must cover *final* submit instants: synthesize_notice
    // shifts on-demand arrivals to `predicted + slack`, which can land
    // past the last raw submit time.
    let horizon = jobs.iter().map(|j| j.submit.as_secs()).max().unwrap_or(0) + 1;
    Trace::new(system_size, SimDuration::from_secs(horizon), jobs)
}

fn synthesize_notice(
    rng: &mut StdRng,
    cfg: &SwfImportConfig,
    t_gen: SimTime,
) -> (SimTime, Option<NoticeSpec>, NoticeCategory) {
    let idx = crate::dist::weighted_index(&cfg.notice_mix.weights(), rng);
    let lead_s = rng.random_range(cfg.notice_lead.0.as_secs()..=cfg.notice_lead.1.as_secs());
    let predicted = t_gen + SimDuration::from_secs(lead_s);
    let spec = |pred| {
        Some(NoticeSpec {
            notice_time: t_gen,
            predicted_arrival: pred,
        })
    };
    match NoticeCategory::ALL[idx] {
        NoticeCategory::NoNotice => (t_gen, None, NoticeCategory::NoNotice),
        NoticeCategory::Accurate => (predicted, spec(predicted), NoticeCategory::Accurate),
        NoticeCategory::Early => {
            // A zero lead leaves no room to arrive early; degenerate to
            // arriving at the notice instant instead of sampling 0..0.
            let early_s = if lead_s > 0 {
                rng.random_range(0..lead_s)
            } else {
                0
            };
            let arrive = t_gen + SimDuration::from_secs(early_s);
            (arrive, spec(predicted), NoticeCategory::Early)
        }
        NoticeCategory::Late => {
            // A zero window means "late by nothing": arrive exactly at the
            // prediction rather than sampling the empty range 1..=0.
            let slack = if cfg.late_window.as_secs() > 0 {
                rng.random_range(1..=cfg.late_window.as_secs())
            } else {
                0
            };
            (
                predicted + SimDuration::from_secs(slack),
                spec(predicted),
                NoticeCategory::Late,
            )
        }
    }
}

/// Serialise a trace to SWF (see the module docs for the embedded-mode
/// field map; plain mode keeps only the standard raw fields). Thin wrapper
/// over the streaming [`to_swf_writer`] for callers that want a `String`.
pub fn to_swf(trace: &Trace, cfg: &SwfExportConfig) -> String {
    let mut out = Vec::with_capacity(80 * (trace.jobs.len() + 8));
    to_swf_writer(trace, cfg, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("SWF export is ASCII")
}

/// Streaming SWF export: serialise `trace` line by line into `writer`, so
/// an archive-scale export never materializes the output in memory. In
/// embedded mode the headers additionally carry
/// `; HWS-MaxNoticeLead: <secs>` — the largest `submit − notice_time` gap
/// in the trace — which lets a streaming replay bound how far ahead of the
/// virtual clock it must pull jobs to inject advance notices in order.
///
/// # Errors
///
/// Propagates the first IO error from `writer`.
pub fn to_swf_writer<W: std::io::Write>(
    trace: &Trace,
    cfg: &SwfExportConfig,
    writer: &mut W,
) -> std::io::Result<()> {
    // Buffer per line: one formatted write per job into the writer keeps
    // syscall counts sane even for unbuffered writers.
    writer.write_all(b"; HWS SWF export v1\n")?;
    if cfg.embed_classes {
        writer.write_all(b"; HWS-Embedded: 1\n")?;
        writeln!(writer, "; HWS-SystemSize: {}", trace.system_size)?;
        writeln!(writer, "; HWS-Horizon: {}", trace.horizon.as_secs())?;
        writeln!(
            writer,
            "; HWS-MaxNoticeLead: {}",
            trace.max_notice_lead().as_secs()
        )?;
    }
    let ppn = if cfg.embed_classes {
        1
    } else {
        cfg.procs_per_node.max(1)
    };
    writeln!(writer, "; MaxNodes: {}", trace.system_size)?;
    writeln!(
        writer,
        "; MaxProcs: {}",
        u64::from(trace.system_size) * u64::from(ppn)
    )?;
    writer.write_all(b"; UnixStartTime: 0\n")?;
    for (pos, j) in trace.jobs.iter().enumerate() {
        let procs = u64::from(j.size) * u64::from(ppn);
        if cfg.embed_classes {
            // Capability-class jobs shift the kind code by 4; a capacity
            // trace writes exactly the pre-capability codes, keeping old
            // embedded exports byte-identical.
            let kind_code = match j.kind {
                JobKind::Rigid => 1,
                JobKind::OnDemand => 2,
                JobKind::Malleable => 3,
            } + if j.class == JobClass::Capability {
                4
            } else {
                0
            };
            let cat_code = match j.category {
                NoticeCategory::NoNotice => 0,
                NoticeCategory::Accurate => 1,
                NoticeCategory::Early => 2,
                NoticeCategory::Late => 3,
            };
            let (nt, pa) = match &j.notice {
                Some(n) => (
                    n.notice_time.as_secs() as i64,
                    n.predicted_arrival.as_secs() as i64,
                ),
                None => (-1, -1),
            };
            writeln!(
                writer,
                "{} {} -1 {} {} -1 -1 {} {} {} 1 {} {} {} {} {} {} {}",
                j.id.0 + 1,
                j.submit.as_secs(),
                j.work.as_secs(),
                j.size,
                j.size,
                j.estimate.as_secs(),
                cat_code,
                j.project.0,
                j.project.0,
                j.setup.as_secs(),
                kind_code,
                j.min_size,
                nt,
                pa
            )?;
        } else {
            writeln!(
                writer,
                "{} {} -1 {} {} -1 -1 {} {} -1 1 {} {} -1 -1 -1 -1 -1",
                pos + 1,
                j.submit.as_secs(),
                j.work.as_secs(),
                procs,
                procs,
                j.estimate.as_secs(),
                j.project.0,
                j.project.0,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;
    use proptest::prelude::*;

    /// Four jobs in classic SWF: the second failed (status 0), the third
    /// uses requested procs because allocated is -1, the fourth has the
    /// unknown status -1.
    const SAMPLE: &str = "\
; SWF sample
; UnixStartTime: 0
  1   100  10  3600  128 -1 -1  128  7200 -1 1 7 3 1 1 -1 -1 -1
  2   200   5  1800   64 -1 -1   64  3600 -1 0 8 4 1 1 -1 -1 -1
  3   300  20  5400   -1 -1 -1  256  5400 -1 1 9 5 1 1 -1 -1 -1
  4   400   5   600   32 -1 -1   32  1200 -1 -1 9 5 1 1 -1 -1 -1
";

    fn cfg() -> SwfImportConfig {
        SwfImportConfig {
            system_size: 512,
            ..Default::default()
        }
    }

    #[test]
    fn parses_completed_jobs_only() {
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        assert_eq!(tr.len(), 2); // job 2 failed, job 4 status unknown
        assert_eq!(tr.system_size, 512);
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn keeps_failed_jobs_when_asked() {
        let mut c = cfg();
        c.completed_only = false;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert_eq!(tr.len(), 4);
    }

    #[test]
    fn unknown_status_dropped_unless_included() {
        // Regression: `completed_only` used to silently keep status -1
        // jobs, contradicting its documentation.
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        assert!(
            !tr.jobs.iter().any(|j| j.work.as_secs() == 600),
            "status -1 job must be dropped by default"
        );
        let mut c = cfg();
        c.include_unknown_status = true;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert_eq!(tr.len(), 3);
        assert!(tr.jobs.iter().any(|j| j.work.as_secs() == 600));
    }

    #[test]
    fn streaming_reader_matches_in_memory_import() {
        let a = import_swf(SAMPLE, &cfg()).expect("parse");
        let b =
            import_swf_reader(std::io::BufReader::new(SAMPLE.as_bytes()), &cfg()).expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn field_mapping_is_correct() {
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        // First job (SWF #1): submit 100, 128 procs, 3600 s run, 7200 est.
        let j = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 3_600)
            .expect("present");
        assert_eq!(j.size, 128);
        assert_eq!(j.estimate.as_secs(), 7_200);
        // Third job: allocated -1 → requested 256 used.
        let k = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 5_400)
            .expect("present");
        assert_eq!(k.size, 256);
    }

    #[test]
    fn procs_per_node_scales_sizes() {
        let mut c = cfg();
        c.procs_per_node = 64;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        let j = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 3_600)
            .expect("present");
        assert_eq!(j.size, 2); // ceil(128/64)
    }

    #[test]
    fn estimate_never_below_runtime() {
        // Job 3 requests exactly its runtime; importer keeps est ≥ work.
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        for j in &tr.jobs {
            assert!(j.estimate >= j.work);
        }
    }

    #[test]
    fn type_assignment_is_deterministic_in_seed() {
        let a = import_swf(SAMPLE, &cfg()).expect("parse");
        let b = import_swf(SAMPLE, &cfg()).expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = import_swf("1 2 3\n", &cfg()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let tr = import_swf("; just a comment\n\n", &cfg()).expect("parse");
        assert!(tr.is_empty());
    }

    #[test]
    fn imported_trace_replays() {
        // End-to-end sanity: an imported trace runs through the validator
        // (the full scheduler replay is covered by integration tests).
        let mut c = cfg();
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert!(tr.validate().is_ok());
        // All projects on-demand → both jobs are on-demand (none oversized).
        assert_eq!(tr.count_kind(JobKind::OnDemand), 2);
    }

    #[test]
    fn oversized_on_demand_jobs_are_reassigned() {
        let mut c = cfg();
        c.system_size = 300; // 256-proc job is > half of 300
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        let big = tr.jobs.iter().find(|j| j.size == 256).expect("present");
        assert_ne!(big.kind, JobKind::OnDemand);
    }

    #[test]
    fn max_nodes_header_overrides_config() {
        // A real archive log describes its own machine; replaying a
        // 300-node machine's log must not silently pretend it ran on the
        // configured (Theta-sized) system.
        let text = format!("; MaxNodes: 300\n{SAMPLE}");
        let tr = import_swf(&text, &cfg()).expect("parse");
        assert_eq!(tr.system_size, 300);
        assert!(tr.jobs.iter().all(|j| j.size <= 300));
        // Without the header the configured fallback applies.
        assert_eq!(import_swf(SAMPLE, &cfg()).expect("parse").system_size, 512);
    }

    #[test]
    fn max_procs_header_scales_by_procs_per_node() {
        let text = format!("; MaxProcs: 6400\n{SAMPLE}");
        let mut c = cfg();
        c.procs_per_node = 64;
        let tr = import_swf(&text, &c).expect("parse");
        assert_eq!(tr.system_size, 100); // ceil(6400/64)
    }

    #[test]
    fn zero_on_demand_fraction_yields_pure_batch() {
        // Regression: `.max(1.0)` used to force one on-demand project even
        // at od_project_frac == 0.0, making a pure-batch baseline
        // impossible.
        let mut c = cfg();
        c.od_project_frac = 0.0;
        c.rigid_project_frac = 1.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert_eq!(tr.count_kind(JobKind::OnDemand), 0);
        assert_eq!(tr.count_kind(JobKind::Rigid), tr.len());
    }

    #[test]
    fn tiny_nonzero_fraction_still_rounds_up_to_one_project() {
        let mut c = cfg();
        c.od_project_frac = 0.001;
        c.rigid_project_frac = 0.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert!(tr.count_kind(JobKind::OnDemand) > 0);
    }

    #[test]
    fn horizon_covers_late_arrivals() {
        // Regression: the horizon used to track only *raw* submit times,
        // but a Late-notice job arrives at `predicted + slack`, which can
        // land past the last raw submission.
        let mut c = cfg();
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        c.notice_mix = NoticeMix {
            no_notice: 0.0,
            accurate: 0.0,
            early: 0.0,
            late: 1.0,
        };
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert!(!tr.is_empty());
        for j in &tr.jobs {
            assert!(
                j.submit.as_secs() < tr.horizon.as_secs(),
                "{}: submit {} outside horizon {}",
                j.id,
                j.submit.as_secs(),
                tr.horizon.as_secs()
            );
        }
        // The last raw submit is 300 s; every arrival is ≥ predicted
        // (≥ 300 + 15 min), so the fixed horizon must exceed the raw one.
        assert!(tr.horizon.as_secs() > 301);
    }

    #[test]
    fn degenerate_notice_ranges_do_not_panic() {
        // Regression: `random_range(1..=0)` when late_window is zero and
        // `random_range(0..0)` when notice_lead is (0,0) both panicked.
        let mut c = cfg();
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        c.late_window = SimDuration::ZERO;
        c.notice_lead = (SimDuration::ZERO, SimDuration::ZERO);
        for seed in 0..32 {
            c.seed = seed;
            let tr = import_swf(SAMPLE, &c).expect("parse");
            assert!(tr.validate().is_ok(), "seed {seed}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Edge values of every `SwfImportConfig` knob — zero fractions,
        /// zero windows, degenerate lead ranges, wide processor-per-node
        /// factors — must never panic and must always yield a valid trace
        /// whose submissions sit inside its horizon.
        #[test]
        fn import_survives_config_edge_values(
            od_tenths in 0..=10u32,
            rigid_tenths in 0..=10u32,
            mix_idx in 0..6usize,
            lead_lo_min in 0..=2u64,
            lead_span_min in 0..=2u64,
            late_min in 0..=2u64,
            min_frac_tenths in 0..=10u32,
            ppn in 1..=64u32,
            seed in 0..1_000u64,
        ) {
            let od = f64::from(od_tenths) / 10.0;
            let rigid = (f64::from(rigid_tenths) / 10.0).min(1.0 - od);
            let mixes = [
                NoticeMix::W1,
                NoticeMix::W2,
                NoticeMix::W3,
                NoticeMix::W4,
                NoticeMix::W5,
                NoticeMix { no_notice: 0.0, accurate: 0.0, early: 0.0, late: 1.0 },
            ];
            let c = SwfImportConfig {
                system_size: 512,
                procs_per_node: ppn,
                od_project_frac: od,
                rigid_project_frac: rigid,
                notice_mix: mixes[mix_idx],
                notice_lead: (
                    SimDuration::from_mins(lead_lo_min),
                    SimDuration::from_mins(lead_lo_min + lead_span_min),
                ),
                late_window: SimDuration::from_mins(late_min),
                malleable_min_frac: f64::from(min_frac_tenths) / 10.0,
                seed,
                ..SwfImportConfig::default()
            };
            let tr = import_swf(SAMPLE, &c).expect("import");
            prop_assert!(tr.validate().is_ok());
            prop_assert!(tr
                .jobs
                .iter()
                .all(|j| j.submit.as_secs() < tr.horizon.as_secs()));
            if od == 0.0 {
                prop_assert_eq!(tr.count_kind(JobKind::OnDemand), 0);
            }
        }
    }

    // -----------------------------------------------------------------
    // Export round-trips
    // -----------------------------------------------------------------

    #[test]
    fn embedded_export_round_trips_byte_identically() {
        // A generated trace exercises all three classes and all four
        // notice categories.
        let tr = TraceConfig::tiny().generate(3);
        let swf = to_swf(&tr, &SwfExportConfig::default());
        let back = import_swf(&swf, &cfg()).expect("re-import");
        assert_eq!(tr, back);
        // And the serialised form is stable.
        assert_eq!(to_swf(&back, &SwfExportConfig::default()), swf);
    }

    #[test]
    fn embedded_export_round_trips_an_imported_trace() {
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        let swf = to_swf(&tr, &SwfExportConfig::default());
        let back = import_swf(&swf, &cfg()).expect("re-import");
        assert_eq!(tr, back);
    }

    #[test]
    fn csv_round_trip_of_imported_trace_is_identity() {
        // import_swf → to_csv → from_csv is lossless.
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        let csv = tr.to_csv();
        let back = Trace::from_csv(&csv).expect("csv parse");
        assert_eq!(tr, back);
        assert_eq!(back.to_csv(), csv);
    }

    #[test]
    fn plain_export_drops_classes_but_keeps_raw_fields() {
        let tr = TraceConfig::tiny().generate(7);
        let plain = to_swf(
            &tr,
            &SwfExportConfig {
                embed_classes: false,
                procs_per_node: 1,
            },
        );
        assert!(!plain.contains("HWS-Embedded"));
        let c = SwfImportConfig {
            system_size: tr.system_size,
            ..SwfImportConfig::default()
        };
        let back = import_swf(&plain, &c).expect("re-import");
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.system_size, tr.system_size);
        // Raw per-job fields survive (classes are reassigned, and on-demand
        // submit times may shift, so compare the batch jobs' raw columns).
        let total_work: u64 = tr.jobs.iter().map(|j| j.work.as_secs()).sum();
        let back_work: u64 = back.jobs.iter().map(|j| j.work.as_secs()).sum();
        assert_eq!(total_work, back_work);
        let sizes = |t: &Trace| {
            let mut v: Vec<u32> = t.jobs.iter().map(|j| j.size).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&tr), sizes(&back));
    }

    #[test]
    fn plain_export_scales_procs_per_node() {
        let tr = TraceConfig::tiny().generate(1);
        let plain = to_swf(
            &tr,
            &SwfExportConfig {
                embed_classes: false,
                procs_per_node: 64,
            },
        );
        let c = SwfImportConfig {
            system_size: tr.system_size,
            procs_per_node: 64,
            ..SwfImportConfig::default()
        };
        let back = import_swf(&plain, &c).expect("re-import");
        let sizes = |t: &Trace| {
            let mut v: Vec<u32> = t.jobs.iter().map(|j| j.size).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&tr), sizes(&back));
    }

    #[test]
    fn embedded_rejects_garbage_codes() {
        let mut swf = String::from("; HWS-Embedded: 1\n; HWS-SystemSize: 64\n");
        swf.push_str("1 0 -1 100 4 -1 -1 4 200 0 1 0 0 0 9 4 -1 -1\n"); // kind 9
        assert!(import_swf(&swf, &cfg()).is_err());
    }

    #[test]
    fn embedded_round_trips_capability_tags() {
        let mut tr = TraceConfig::tiny().generate(3);
        let tagged = tr.tag_capability(0.5);
        assert!(tagged > 0, "tiny seed 3 must have rigid jobs");
        let swf = to_swf(&tr, &SwfExportConfig::default());
        let back = import_swf(&swf, &cfg()).expect("re-import");
        assert_eq!(tr, back);
        assert_eq!(back.count_class(crate::job::JobClass::Capability), tagged);
        assert_eq!(to_swf(&back, &SwfExportConfig::default()), swf);
    }

    #[test]
    fn zero_capability_embedded_export_is_unchanged() {
        // A capacity-only trace must serialise exactly as it did before
        // the capability class existed (kind codes 1–3 only).
        let tr = TraceConfig::tiny().generate(3);
        let swf = to_swf(&tr, &SwfExportConfig::default());
        for line in swf.lines().filter(|l| !l.starts_with(';')) {
            let code: i64 = line.split_whitespace().nth(14).unwrap().parse().unwrap();
            assert!((1..=3).contains(&code), "unexpected kind code in {line}");
        }
    }

    #[test]
    fn embedded_rejects_capability_on_demand_code() {
        let mut swf = String::from("; HWS-Embedded: 1\n; HWS-SystemSize: 64\n");
        swf.push_str("1 0 -1 100 4 -1 -1 4 200 0 1 0 0 0 6 4 -1 -1\n"); // code 6
        let err = import_swf(&swf, &cfg()).unwrap_err();
        assert!(err.message.contains("capability"), "{err}");
    }

    #[test]
    fn plain_export_drops_capability_tags() {
        let mut tr = TraceConfig::tiny().generate(7);
        tr.tag_capability(1.0);
        let plain = to_swf(
            &tr,
            &SwfExportConfig {
                embed_classes: false,
                procs_per_node: 1,
            },
        );
        let c = SwfImportConfig {
            system_size: tr.system_size,
            ..SwfImportConfig::default()
        };
        let back = import_swf(&plain, &c).expect("re-import");
        assert_eq!(back.count_class(crate::job::JobClass::Capability), 0);
    }
}
