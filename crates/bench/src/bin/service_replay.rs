//! **Service replay** — the bundled `theta_quick.swf` fixture replayed as
//! a live submission log through [`SchedulerService`], for all six
//! mechanisms (ROADMAP: "long-lived service mode").
//!
//! Each seed's log is applied entry by entry (`step_before(at)` + the
//! op), with wall-clock latency sampled around every `submit` and `query`
//! call, and a `what_if` six-mechanism forecast fired at the 25/50/75%
//! marks of the log. The resulting metrics are asserted **bitwise
//! identical** to materializing the same log and batch-replaying it with
//! `Simulator::run_trace` — the PR's parity oracle, re-run here at
//! fixture scale on every CI push.
//!
//! Writes `BENCH_service.json` at the workspace root (override with
//! `HWS_SERVICE_REPLAY_JSON=path`). The `metrics_fingerprint` column is
//! deterministic and gated by `baseline_parity`; the p50/p99 latency
//! columns are wall-clock and exempt. `HWS_SERVICE_PARANOID=1` enables
//! the O(n)-scan cross-validating cluster accounting in every run (the
//! CI smoke does; the recorded baseline does not need it — paranoid
//! checks assert, they never change behavior).
//!
//! ```text
//! cargo run --release -p hws-bench --bin service_replay              # bundled fixture
//! HWS_SWF=theta.swf HWS_SWF_PPN=64 cargo run --release -p hws-bench --bin service_replay
//! ```

use hws_bench::{bundled_swf_fixture, metrics_fingerprint, seeds_from_env, TraceSource};
use hws_core::{Mechanism, SchedulerService, SimConfig, SimOutcome, Simulator};
use hws_metrics::Table;
use hws_sim::SimDuration;
use hws_workload::job::JobSpecBuilder;
use hws_workload::{SubmissionLog, SubmitOp, SwfImportConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Probe ids live far above any trace id so a forecast can never collide
/// with a logged submission.
const PROBE_ID_BASE: u64 = 1 << 40;

/// Wall-clock samples for one mechanism, microseconds.
#[derive(Default)]
struct Latencies {
    submit: Vec<f64>,
    query: Vec<f64>,
    what_if: Vec<f64>,
}

fn main() {
    let seeds = seeds_from_env();
    let paranoid = std::env::var("HWS_SERVICE_PARANOID").is_ok_and(|v| v == "1");
    let source = TraceSource::swf_from_env()
        .unwrap_or_else(|| TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default()));
    let probe = source.make_trace(0);
    eprintln!(
        "service_replay: {}, {} jobs on {} nodes, {} seeds x 6 mechanisms \
         (live service vs materialized batch, bitwise){}",
        source.describe(),
        probe.len(),
        probe.system_size,
        seeds,
        if paranoid { ", paranoid checks on" } else { "" }
    );

    let mut rows: Vec<(Mechanism, u64, Latencies)> = Vec::new();
    for m in Mechanism::ALL_SIX {
        let mut cfg = SimConfig::with_mechanism(m);
        // Deterministic fingerprint: no wall-clock decision sampling.
        cfg.measure_decisions = false;
        cfg.paranoid_checks = paranoid;
        let mut lat = Latencies::default();
        let mut outcomes: Vec<SimOutcome> = Vec::new();
        for seed in 0..seeds {
            let trace = source.make_trace(seed);
            let log = SubmissionLog::from_trace(&trace);
            let live = drive(&cfg, &log, &mut lat);
            let batch = Simulator::run_trace(&cfg, &trace);
            assert_eq!(
                live.metrics,
                batch.metrics,
                "{} seed {seed}: live service diverged from materialized replay",
                m.name()
            );
            assert_eq!(
                live.classes,
                batch.classes,
                "{} seed {seed}: classes",
                m.name()
            );
            assert_eq!(
                live.shards,
                batch.shards,
                "{} seed {seed}: shards",
                m.name()
            );
            assert_eq!(
                live.admitted_jobs,
                batch.admitted_jobs,
                "{} seed {seed}: admitted",
                m.name()
            );
            outcomes.push(live);
        }
        let fp = metrics_fingerprint(&outcomes);
        eprintln!(
            "  {:<8} verified {} seeds bitwise, fingerprint {fp:016x}",
            m.name(),
            seeds
        );
        rows.push((m, fp, lat));
    }

    let mut t = Table::new(vec![
        "mechanism",
        "fingerprint",
        "submit p50/p99 (us)",
        "query p50/p99 (us)",
        "what-if p50/p99 (ms)",
    ]);
    for (m, fp, lat) in &rows {
        t.row(vec![
            m.name().to_string(),
            format!("{fp:016x}"),
            format!(
                "{:.1}/{:.1}",
                pct(&lat.submit, 0.50),
                pct(&lat.submit, 0.99)
            ),
            format!("{:.1}/{:.1}", pct(&lat.query, 0.50), pct(&lat.query, 0.99)),
            format!(
                "{:.2}/{:.2}",
                pct(&lat.what_if, 0.50) / 1000.0,
                pct(&lat.what_if, 0.99) / 1000.0
            ),
        ]);
    }
    println!(
        "SERVICE REPLAY: live submission log on {}",
        source.describe()
    );
    println!("{}", t.render());

    let json_path = std::env::var("HWS_SERVICE_REPLAY_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    let label = match &source {
        TraceSource::SwfFile { path, .. } => path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| source.describe()),
        _ => source.describe(),
    };
    let json = results_to_json(&label, probe.len(), seeds, &rows);
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {} mechanisms to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Apply `log` to a fresh service entry by entry, sampling submit/query
/// latency on every submission and firing a six-mechanism `what_if`
/// forecast at the quartile marks.
fn drive(cfg: &SimConfig, log: &SubmissionLog, lat: &mut Latencies) -> SimOutcome {
    let mut svc = SchedulerService::new(cfg.clone(), log.system_size());
    let n = log.len();
    let marks = [n / 4, n / 2, 3 * n / 4];
    let mut probes = 0u64;
    for (i, entry) in log.entries().iter().enumerate() {
        svc.step_before(entry.at);
        if marks.contains(&i) {
            probes += 1;
            forecast_probe(&svc, PROBE_ID_BASE + probes, lat);
        }
        match &entry.op {
            SubmitOp::Submit(spec) => {
                let id = spec.id;
                let t = Instant::now();
                svc.submit(spec.clone()).expect("log submissions are valid");
                lat.submit.push(us(t));
                let t = Instant::now();
                let _ = svc.query(id);
                lat.query.push(us(t));
            }
            SubmitOp::Cancel(id) => {
                let _ = svc.cancel(*id);
            }
        }
    }
    svc.into_outcome()
}

/// One speculative probe: a 64-node, one-hour rigid job submitted "now".
/// Asserts the forecast covers all six mechanisms and respects causality.
fn forecast_probe(svc: &SchedulerService, probe_id: u64, lat: &mut Latencies) {
    let spec = JobSpecBuilder::rigid(probe_id)
        .submit_at(svc.now())
        .size(64)
        .work(SimDuration::from_secs(3600))
        .estimate(SimDuration::from_secs(7200))
        .build();
    let t = Instant::now();
    let forecast = svc.what_if(&spec).expect("probe is submittable");
    lat.what_if.push(us(t));
    assert_eq!(forecast.len(), 6, "probe must start under every mechanism");
    for (m, start) in &forecast {
        assert!(
            *start >= spec.submit,
            "{}: probe forecast starts before submission",
            m.name()
        );
    }
}

fn us(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e6
}

/// Nearest-rank percentile over the samples (0 when empty — tiny logs may
/// never reach a quartile mark).
fn pct(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    v[((v.len() - 1) as f64 * q).round() as usize]
}

/// Workspace root, next to the other committed baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json")
}

fn results_to_json(
    label: &str,
    jobs: usize,
    seeds: u64,
    rows: &[(Mechanism, u64, Latencies)],
) -> String {
    let mut out = String::from("[\n");
    for (i, (m, fp, lat)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"mechanism\": \"{}\", \"source\": \"{}\", \"jobs\": {jobs}, \"seeds\": {seeds}, \
             \"metrics_fingerprint\": \"{fp:016x}\", \
             \"submit_p50_us\": {:.1}, \"submit_p99_us\": {:.1}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \
             \"what_if_p50_us\": {:.1}, \"what_if_p99_us\": {:.1}}}{comma}",
            m.name(),
            label.replace('"', "'"),
            pct(&lat.submit, 0.50),
            pct(&lat.submit, 0.99),
            pct(&lat.query, 0.50),
            pct(&lat.query, 0.99),
            pct(&lat.what_if, 0.50),
            pct(&lat.what_if, 0.99),
        );
    }
    out.push_str("]\n");
    out
}
