//! Deterministic black-box policy search over the scheduler's knob
//! space (DESIGN.md §16).
//!
//! The paper hand-picks six mechanism compositions and compares them on
//! fixed traces; this crate turns that comparison into a *searchable
//! design space*. A [`Candidate`] is a mechanism plus a
//! [`KnobVector`](hws_workload::KnobVector) (admission throttle,
//! backfill aggressiveness, checkpoint interval multiplier, placement
//! policy); a [`SearchSpace`] enumerates a grid of candidates; and two
//! tuners evaluate them against seeded traces:
//!
//! * [`grid_search`] — every candidate × every seed, exhaustively;
//! * [`tournament_search`] — successive halving on fresh seeds per
//!   round, spending most of the budget on the strongest candidates.
//!
//! Both fan the independent simulation cells across CPU cores through
//! [`hws_sim::par_map`] — the same slot pattern as
//! `Simulator::run_sweep` — and fold results in candidate/seed index
//! order, so a parallel search is **bitwise identical** to a sequential
//! one, and two runs of the same (space, seeds) produce byte-identical
//! [`Leaderboard`] artifacts. Wall-clock decision latencies are forced
//! off for every candidate to keep the claim exact.

pub mod leaderboard;
pub mod space;
pub mod tuner;

pub use leaderboard::{fnv1a, Leaderboard, LeaderboardRow};
pub use space::{Candidate, SearchSpace};
pub use tuner::{grid_search, tournament_search, SearchConfig, TournamentConfig};
