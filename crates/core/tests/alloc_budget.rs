//! Allocation-budget regression tests (run with `--features count-allocs`):
//! the steady-state per-event replay path must stay within a small constant
//! heap-allocation budget, and the recycled kernels (event queue, job
//! arena) must be allocation-free once warm.
//!
//! The budgets carry slack — they are tripwires for structural regressions
//! (a per-pass `HashSet`, a rebuilt key cache, a per-notice snapshot
//! `Vec`), not exact counts.
#![cfg(feature = "count-allocs")]

use hws_core::counting_alloc::{allocation_count, CountingAlloc};
use hws_core::{Mechanism, SimConfig, Simulator};
use hws_sim::{EventQueue, SimDuration, SimTime};
use hws_workload::job::JobSpecBuilder;
use hws_workload::{JobId, TraceConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Warm event queue: pushes and pops at steady occupancy must not allocate
/// (the heap and ring storage are already sized).
#[test]
fn event_queue_steady_state_is_allocation_free() {
    let mut q: EventQueue<u64> = EventQueue::new();
    // Warm up: grow the heap and the cancellation ring past the working set.
    for i in 0..1_024u64 {
        q.schedule(SimTime::from_secs(i), i);
    }
    while q.pop().is_some() {}
    let before = allocation_count();
    for round in 0..1_000u64 {
        // Times keep advancing: the queue's watermark forbids scheduling
        // in the causal past.
        for i in 0..8 {
            q.schedule(SimTime::from_secs(2_000 + round * 10 + i), i);
        }
        for _ in 0..8 {
            q.pop().unwrap();
        }
    }
    let grew = allocation_count() - before;
    assert_eq!(grew, 0, "warm push/pop allocated {grew} times");
}

/// Warm job arena: a sliding admit/retire window must not allocate once
/// the free list and the id index have reached the window size.
#[test]
fn job_table_steady_state_is_allocation_free() {
    let spec = |id: u64| {
        JobSpecBuilder::rigid(id)
            .size(4)
            .work(SimDuration::from_secs(60))
            .estimate(SimDuration::from_secs(120))
            .build()
    };
    let mut t = hws_core::JobTable::new();
    for id in 0..256u64 {
        t.admit(spec(id));
    }
    for id in 0..256u64 {
        t.retire(JobId(id));
    }
    let before = allocation_count();
    for id in 256..4_096u64 {
        // JobSpec itself is plain data (no heap fields), so the only
        // candidate allocations are the arena's own structures.
        t.admit(spec(id));
        assert!(t.state(JobId(id)).id == JobId(id));
        t.retire(JobId(id));
    }
    let grew = allocation_count() - before;
    assert_eq!(grew, 0, "warm admit/lookup/retire allocated {grew} times");
}

/// End-to-end tripwire: replaying a multi-thousand-job hybrid workload
/// must stay under a small per-event allocation budget. The driver's
/// steady-state event handling recycles its buffers; what remains is
/// bookkeeping that scales with decisions (claims, leases, per-od plans),
/// not with queue depth.
#[test]
fn per_event_allocation_budget_holds() {
    let trace = TraceConfig::tiny().with_jobs(2_000).generate(11);
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
    cfg.measure_decisions = false;
    // Warm-up run: fault in lazy statics, grow thread-local caches.
    let _ = Simulator::run_trace(&cfg, &trace);
    let before = allocation_count();
    let outcome = Simulator::run_trace(&cfg, &trace);
    let allocs = allocation_count() - before;
    let events = outcome.engine.delivered.max(1);
    let per_event = allocs as f64 / events as f64;
    eprintln!("measured {per_event:.3} allocations/event ({allocs} over {events} events)");
    // Measured ~0.63/event on the arena + recycled-scratch driver; the
    // pre-arena driver (per-pass HashSet + key cache) sat well above 2.
    assert!(
        per_event < 2.0,
        "hot path allocated {allocs} times over {events} events ({per_event:.2}/event)"
    );
}
