//! Scalar reward folds over run metrics: the objective the policy
//! search (`hws-search`) and the `Environment` facade optimise.
//!
//! Rewards are **maximised**, so cost-like metrics (bounded slowdown,
//! turnaround) enter negated. Every fold is a pure function of the
//! deterministic metric fields — wall-clock decision latencies are never
//! read — so identical runs score identically bitwise.
//!
//! ## The absent-breakdown case
//!
//! `SimOutcome.classes` is `None` for zero-capability runs (the
//! breakdown is deliberately omitted so those runs compare bitwise
//! against two-class builds). Class-weighted folds therefore take the
//! breakdown as an `Option` and must *never* unwrap it: with no
//! capability jobs the whole population is capacity work, so the fold
//! falls back to the population-wide turnaround and the capability term
//! contributes zero. A regression test pins this arm.

use crate::classes::ClassBreakdown;
use crate::summary::Metrics;

/// Which scalar objective to fold the metrics into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardKind {
    /// Negated average bounded slowdown (the paper's §IV-D headline
    /// responsiveness metric); higher is better.
    NegBoundedSlowdown,
    /// System utilisation in `[0, 1]`; higher is better.
    Utilization,
    /// Negated class-weighted average turnaround (hours):
    /// `-(capacity_weight · T_capacity + capability_weight · T_capability)`.
    /// With no breakdown (zero-capability run) the capacity term uses the
    /// population-wide turnaround and the capability term is zero.
    ClassWeighted {
        capacity_weight: f64,
        capability_weight: f64,
    },
    /// Linear blend `slowdown_weight · (-avg_bounded_slowdown) +
    /// utilization_weight · utilization`.
    Blend {
        slowdown_weight: f64,
        utilization_weight: f64,
    },
}

/// A configured reward: construct once, [`score`](RewardSpec::score)
/// every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardSpec {
    pub kind: RewardKind,
}

impl RewardSpec {
    pub fn neg_bounded_slowdown() -> Self {
        RewardSpec {
            kind: RewardKind::NegBoundedSlowdown,
        }
    }

    pub fn utilization() -> Self {
        RewardSpec {
            kind: RewardKind::Utilization,
        }
    }

    pub fn class_weighted(capacity_weight: f64, capability_weight: f64) -> Self {
        RewardSpec {
            kind: RewardKind::ClassWeighted {
                capacity_weight,
                capability_weight,
            },
        }
    }

    pub fn blend(slowdown_weight: f64, utilization_weight: f64) -> Self {
        RewardSpec {
            kind: RewardKind::Blend {
                slowdown_weight,
                utilization_weight,
            },
        }
    }

    /// Stable one-token-ish description for leaderboard headers; floats
    /// printed with `{:?}` so the text round-trips byte-identically.
    pub fn describe(&self) -> String {
        match self.kind {
            RewardKind::NegBoundedSlowdown => "neg-bounded-slowdown".into(),
            RewardKind::Utilization => "utilization".into(),
            RewardKind::ClassWeighted {
                capacity_weight,
                capability_weight,
            } => format!(
                "class-weighted(capacity={capacity_weight:?},capability={capability_weight:?})"
            ),
            RewardKind::Blend {
                slowdown_weight,
                utilization_weight,
            } => format!("blend(slowdown={slowdown_weight:?},utilization={utilization_weight:?})"),
        }
    }

    /// Fold a run into its scalar reward. `classes` is the per-class
    /// breakdown when the run saw capability jobs, `None` otherwise —
    /// the zero-capability case is handled, never unwrapped (see the
    /// module docs).
    pub fn score(&self, m: &Metrics, classes: Option<&ClassBreakdown>) -> f64 {
        match self.kind {
            RewardKind::NegBoundedSlowdown => -m.avg_bounded_slowdown,
            RewardKind::Utilization => m.utilization,
            RewardKind::ClassWeighted {
                capacity_weight,
                capability_weight,
            } => match classes {
                Some(b) => {
                    -(capacity_weight * b.capacity.avg_turnaround_h
                        + capability_weight * b.capability.avg_turnaround_h)
                }
                // Zero-capability run: the whole population is capacity
                // work; the capability term contributes nothing.
                None => -(capacity_weight * m.avg_turnaround_h),
            },
            RewardKind::Blend {
                slowdown_weight,
                utilization_weight,
            } => slowdown_weight * (-m.avg_bounded_slowdown) + utilization_weight * m.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(avg_turnaround_h: f64, slowdown: f64, utilization: f64) -> Metrics {
        Metrics {
            avg_turnaround_h,
            avg_bounded_slowdown: slowdown,
            utilization,
            ..Metrics::default()
        }
    }

    #[test]
    fn slowdown_and_utilization_folds() {
        let m = metrics_with(5.0, 3.5, 0.8);
        assert_eq!(RewardSpec::neg_bounded_slowdown().score(&m, None), -3.5);
        assert_eq!(RewardSpec::utilization().score(&m, None), 0.8);
        assert_eq!(RewardSpec::blend(1.0, 10.0).score(&m, None), -3.5 + 8.0);
    }

    #[test]
    fn class_weighted_uses_breakdown_when_present() {
        let m = metrics_with(5.0, 3.5, 0.8);
        let mut b = ClassBreakdown::default();
        b.capacity.avg_turnaround_h = 2.0;
        b.capability.avg_turnaround_h = 10.0;
        let r = RewardSpec::class_weighted(1.0, 3.0);
        assert_eq!(r.score(&m, Some(&b)), -(2.0 + 30.0));
    }

    /// Regression: a zero-capability run carries `classes: None`; the
    /// class-weighted fold must fall back to the population-wide
    /// turnaround instead of unwrapping (and must stay finite).
    #[test]
    fn class_weighted_survives_absent_breakdown() {
        let m = metrics_with(5.0, 3.5, 0.8);
        let r = RewardSpec::class_weighted(2.0, 3.0);
        let score = r.score(&m, None);
        assert_eq!(score, -10.0);
        assert!(score.is_finite());
    }

    #[test]
    fn empty_run_scores_are_finite() {
        let m = Metrics::default();
        for spec in [
            RewardSpec::neg_bounded_slowdown(),
            RewardSpec::utilization(),
            RewardSpec::class_weighted(1.0, 3.0),
            RewardSpec::blend(1.0, 1.0),
        ] {
            assert!(spec.score(&m, None).is_finite(), "{}", spec.describe());
        }
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(
            RewardSpec::neg_bounded_slowdown().describe(),
            "neg-bounded-slowdown"
        );
        assert_eq!(
            RewardSpec::class_weighted(1.0, 2.5).describe(),
            "class-weighted(capacity=1.0,capability=2.5)"
        );
        assert_eq!(
            RewardSpec::blend(0.5, 2.0).describe(),
            "blend(slowdown=0.5,utilization=2.0)"
        );
    }
}
