//! **Baseline parity gate** — diffs freshly regenerated `BENCH_*.json`
//! files against the committed baselines at the workspace root, failing
//! loudly (with the regeneration recipe) on any drift.
//!
//! The CI `baseline-parity` job re-runs `swf_replay`, `throughput`,
//! `federated`, `capability`, `service_replay`, `outage_replay`, and
//! `policy_search` at quick scale with the baseline seed count, pointing their
//! `HWS_*_JSON` overrides at a scratch directory, then invokes this binary
//! with that directory:
//!
//! ```text
//! HWS_SCALE=quick HWS_SEEDS=10 HWS_SWF_REPLAY_JSON=regen/BENCH_swf_replay.json \
//!     cargo run --release -p hws-bench --bin swf_replay
//! # ... same for throughput and federated ...
//! cargo run --release -p hws-bench --bin baseline_parity -- regen
//! ```
//!
//! Comparison rules per file:
//!
//! * `BENCH_swf_replay.json`, `BENCH_federated.json`,
//!   `BENCH_capability.json`, `BENCH_outages.json`,
//!   `BENCH_policy_search.json` — byte-for-byte: every recorded field is
//!   a deterministic simulation output (outage injection rides the event
//!   queue, and the policy-search leaderboard folds seeded rewards in
//!   index order, so ranks and fingerprints are as reproducible as
//!   turnaround times).
//! * `BENCH_simulator_throughput.json` — field-wise on the deterministic
//!   columns (`source`, `mechanism`, `jobs`, `seeds`,
//!   `metrics_fingerprint`, `avg_turnaround_h`, `utilization`); the
//!   wall-clock columns legitimately vary between machines.
//! * `BENCH_service.json` — field-wise on the deterministic columns
//!   (`mechanism`, `source`, `jobs`, `seeds`, `metrics_fingerprint`);
//!   the submit/query/what-if latency percentiles are wall-clock and
//!   exempt.
//! * `BENCH_archive_replay.json` — field-wise on the deterministic
//!   columns (`jobs`, `seeds`, `events`, `metrics_fingerprint`,
//!   `peak_resident_jobs`), row-matched by `(profile, mechanism)`.
//!   Committed rows with no regenerated counterpart are skipped with a
//!   note: CI regenerates only the quick profile (`HWS_SCALE=quick`), so
//!   the million-job `full` rows are exercised only when the baseline is
//!   re-recorded. A missing regen file skips the whole comparison the
//!   same way, keeping the binary usable on partial regen directories.
//!
//! `BENCH_decision_latency.json` is pure wall-clock and is *not* gated.
//!
//! ## `--perf` mode
//!
//! With `--perf`, the deterministic comparisons above are replaced by a
//! soft throughput gate: every regenerated `events_per_sec` must stay at
//! or above [`PERF_FLOOR`] × the committed value, for the throughput rows
//! (matched by `(source, mechanism)`) and the archive rows (matched by
//! `(profile, mechanism)`). Wall-clock numbers vary between machines, so
//! the floor is deliberately loose — it exists to catch the pathological
//! regression (an accidental O(Q log Q) reintroduction), not a noisy few
//! percent. Missing regen files are skipped with a note so the gate is
//! usable on partial regen directories. The CI `perf-regression` job runs
//! this mode on every PR.

use std::path::{Path, PathBuf};
use std::process::exit;

/// `--perf` mode floor: regenerated `events_per_sec` must be at least this
/// fraction of the committed baseline (i.e. fail on a >25% drop).
const PERF_FLOOR: f64 = 0.75;

/// Deterministic columns of the throughput baseline.
const THROUGHPUT_KEYS: [&str; 7] = [
    "source",
    "mechanism",
    "jobs",
    "seeds",
    "metrics_fingerprint",
    "avg_turnaround_h",
    "utilization",
];

/// Deterministic columns of the archive-replay baseline (the remaining
/// columns — throughput and RSS — are wall-clock).
const ARCHIVE_KEYS: [&str; 5] = [
    "jobs",
    "seeds",
    "events",
    "metrics_fingerprint",
    "peak_resident_jobs",
];

/// Deterministic columns of the live-service baseline (the latency
/// percentiles are wall-clock).
const SERVICE_KEYS: [&str; 5] = [
    "mechanism",
    "source",
    "jobs",
    "seeds",
    "metrics_fingerprint",
];

fn main() {
    let mut perf = false;
    let mut dir: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--perf" {
            perf = true;
        } else {
            dir = Some(PathBuf::from(arg));
        }
    }
    let regen_dir = dir.unwrap_or_else(|| PathBuf::from("regen"));
    let root = workspace_root();
    if perf {
        perf_gate(&root, &regen_dir);
        return;
    }
    let mut failures = Vec::new();

    for file in [
        "BENCH_swf_replay.json",
        "BENCH_federated.json",
        "BENCH_capability.json",
        "BENCH_outages.json",
        "BENCH_policy_search.json",
    ] {
        if let Err(e) = compare_bytes(&root.join(file), &regen_dir.join(file)) {
            failures.push((file, e));
        }
    }
    if let Err(e) = compare_fields(
        &root.join("BENCH_simulator_throughput.json"),
        &regen_dir.join("BENCH_simulator_throughput.json"),
        &THROUGHPUT_KEYS,
    ) {
        failures.push(("BENCH_simulator_throughput.json", e));
    }
    if let Err(e) = compare_fields(
        &root.join("BENCH_service.json"),
        &regen_dir.join("BENCH_service.json"),
        &SERVICE_KEYS,
    ) {
        failures.push(("BENCH_service.json", e));
    }
    if let Err(e) = compare_archive(
        &root.join("BENCH_archive_replay.json"),
        &regen_dir.join("BENCH_archive_replay.json"),
    ) {
        failures.push(("BENCH_archive_replay.json", e));
    }

    if failures.is_empty() {
        println!("baseline-parity: all committed BENCH_*.json baselines reproduced");
        return;
    }
    for (file, why) in &failures {
        eprintln!("baseline-parity FAILED for {file}:\n{why}\n");
    }
    eprintln!(
        "The committed baselines no longer match what the simulator produces.\n\
         If the drift is *intended* (a deliberate behavioral change), regenerate and commit:\n\
         \n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin swf_replay\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin throughput\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin federated\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin capability\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin service_replay\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin outage_replay\n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin policy_search\n\
         \tHWS_SCALE=full HWS_SEEDS=2 cargo run --release -p hws-bench --bin archive_replay\n\
         \n\
         (each binary rewrites its BENCH_*.json at the workspace root), and explain the\n\
         metric movement in the PR description. If the drift is *unintended*, the change\n\
         broke determinism or scheduling behavior — fix it instead."
    );
    exit(1);
}

/// Workspace root, next to the committed baselines.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// `--perf` mode (see the module docs): soft `events_per_sec` floor on the
/// throughput and archive-replay baselines.
fn perf_gate(root: &Path, regen_dir: &Path) {
    let mut failures = Vec::new();
    for (file, row_key) in [
        (
            "BENCH_simulator_throughput.json",
            &["source", "mechanism"] as &[&str],
        ),
        ("BENCH_archive_replay.json", &["profile", "mechanism"]),
    ] {
        if let Err(e) = compare_perf(&root.join(file), &regen_dir.join(file), row_key) {
            failures.push((file, e));
        }
    }
    if failures.is_empty() {
        println!(
            "baseline-parity --perf: regenerated events_per_sec within {:.0}% of every \
             committed baseline row",
            (1.0 - PERF_FLOOR) * 100.0
        );
        return;
    }
    for (file, why) in &failures {
        eprintln!("baseline-parity --perf FAILED for {file}:\n{why}\n");
    }
    eprintln!(
        "Regenerated events_per_sec fell more than {:.0}% below the committed baseline.\n\
         If the slowdown is *intended* (a deliberate trade for correctness or a feature),\n\
         re-record the affected baselines and commit them:\n\
         \n\
         \tHWS_SCALE=quick HWS_SEEDS=10 cargo run --release -p hws-bench --bin throughput\n\
         \tHWS_SCALE=full HWS_SEEDS=2 cargo run --release -p hws-bench --bin archive_replay\n\
         \n\
         and explain the movement in the PR description. If it is *unintended*, profile the\n\
         change — the usual culprit is per-event work that used to be per-pass (see\n\
         DESIGN.md §15 for the queue-maintenance asymptotics this gate protects).",
        (1.0 - PERF_FLOOR) * 100.0
    );
    exit(1);
}

/// Soft throughput comparison for one baseline file: every regenerated row
/// (matched to its committed counterpart by `row_key`) must keep
/// `events_per_sec >= PERF_FLOOR ×` the committed value. Regen may be
/// partial: committed-only rows and a missing regen file are skipped with
/// a note.
fn compare_perf(committed: &Path, regenerated: &Path, row_key: &[&str]) -> Result<(), String> {
    let committed_json = read(committed)?;
    let regenerated_json = match read(regenerated) {
        Ok(json) => json,
        Err(_) => {
            println!(
                "baseline-parity --perf: note: {} not regenerated; skipped",
                regenerated.display()
            );
            return Ok(());
        }
    };
    let key_of = |row: &&str| -> Vec<String> {
        row_key
            .iter()
            .map(|k| field(row, k).unwrap_or("<missing>").to_string())
            .collect()
    };
    let committed_rows = rows(&committed_json);
    let mut checked = 0usize;
    for rb in rows(&regenerated_json) {
        let key = key_of(&rb);
        let Some(ra) = committed_rows.iter().find(|ra| key_of(ra) == key) else {
            return Err(format!(
                "regenerated row {key:?} has no committed counterpart"
            ));
        };
        let parse = |row: &str, which: &str| -> Result<f64, String> {
            field(row, "events_per_sec")
                .and_then(|v| v.parse::<f64>().ok())
                .ok_or_else(|| format!("row {key:?}: {which} events_per_sec missing"))
        };
        let va = parse(ra, "committed")?;
        let vb = parse(rb, "regenerated")?;
        if vb < va * PERF_FLOOR {
            return Err(format!(
                "row {key:?}: events_per_sec regressed beyond the {:.0}% floor\n  \
                 committed:   {va:.0}\n  regenerated: {vb:.0}  ({:.1}% of committed)",
                (1.0 - PERF_FLOOR) * 100.0,
                vb / va * 100.0
            ));
        }
        checked += 1;
    }
    let unchecked = committed_rows.len().saturating_sub(checked);
    if unchecked > 0 {
        println!(
            "baseline-parity --perf: note: {unchecked} committed rows of {} not \
             regenerated; checked the other {checked}",
            committed.file_name().unwrap_or_default().to_string_lossy()
        );
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn compare_bytes(committed: &Path, regenerated: &Path) -> Result<(), String> {
    let a = read(committed)?;
    let b = read(regenerated)?;
    if a == b {
        return Ok(());
    }
    // Point at the first differing row to make the failure actionable.
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return Err(format!(
                "first drift at line {}:\n  committed:   {la}\n  regenerated: {lb}",
                i + 1
            ));
        }
    }
    Err(format!(
        "row count drifted: committed {} lines, regenerated {} lines",
        a.lines().count(),
        b.lines().count()
    ))
}

/// Field-wise parity on the deterministic columns of a baseline whose
/// remaining columns are wall-clock (throughput, service latency).
fn compare_fields(committed: &Path, regenerated: &Path, keys: &[&str]) -> Result<(), String> {
    let committed_json = read(committed)?;
    let regenerated_json = read(regenerated)?;
    let a = rows(&committed_json);
    let b = rows(&regenerated_json);
    if a.len() != b.len() {
        return Err(format!(
            "row count drifted: committed {}, regenerated {}",
            a.len(),
            b.len()
        ));
    }
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        for &key in keys {
            let va = field(ra, key);
            let vb = field(rb, key);
            if va != vb {
                return Err(format!(
                    "row {i}: {key} drifted\n  committed:   {}\n  regenerated: {}",
                    va.unwrap_or("<missing>"),
                    vb.unwrap_or("<missing>")
                ));
            }
        }
    }
    Ok(())
}

/// Archive-replay parity: deterministic fields, row-matched by
/// `(profile, mechanism)`. Regeneration is allowed to be partial (see the
/// module docs): committed-only rows and a missing regen file are skipped
/// with a note, but a regenerated row must have a committed counterpart
/// and match it on every deterministic column.
fn compare_archive(committed: &Path, regenerated: &Path) -> Result<(), String> {
    let committed_json = read(committed)?;
    let regenerated_json = match read(regenerated) {
        Ok(json) => json,
        Err(_) => {
            println!(
                "baseline-parity: note: {} not regenerated; skipping archive comparison",
                regenerated.display()
            );
            return Ok(());
        }
    };
    let key_of = |row: &&str| -> (String, String) {
        (
            field(row, "profile").unwrap_or("<missing>").to_string(),
            field(row, "mechanism").unwrap_or("<missing>").to_string(),
        )
    };
    let committed_rows = rows(&committed_json);
    for rb in rows(&regenerated_json) {
        let key = key_of(&rb);
        let Some(ra) = committed_rows.iter().find(|ra| key_of(ra) == key) else {
            return Err(format!(
                "regenerated row {key:?} has no committed counterpart"
            ));
        };
        for col in ARCHIVE_KEYS {
            let va = field(ra, col);
            let vb = field(rb, col);
            if va != vb {
                return Err(format!(
                    "row {key:?}: {col} drifted\n  committed:   {}\n  regenerated: {}",
                    va.unwrap_or("<missing>"),
                    vb.unwrap_or("<missing>")
                ));
            }
        }
    }
    let unchecked = committed_rows
        .iter()
        .filter(|ra| {
            let key = key_of(ra);
            !rows(&regenerated_json).iter().any(|rb| key_of(rb) == key)
        })
        .count();
    if unchecked > 0 {
        println!(
            "baseline-parity: note: {unchecked} committed archive rows (full profile) \
             not regenerated; checked the rest"
        );
    }
    Ok(())
}

/// The one-object-per-line rows our own JSON writers emit.
fn rows(json: &str) -> Vec<&str> {
    json.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .collect()
}

/// Extract `"key": value` from a single-line JSON object (our writers emit
/// flat rows; no nesting, no escaped quotes in values).
fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"')? + 2
    } else {
        rest.find([',', '}'])?
    };
    Some(&rest[..end])
}
