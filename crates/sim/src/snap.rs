//! Hand-rolled snapshot byte codec: little-endian, fixed-width, versioned
//! by the caller, zero dependencies (the vendor tree is offline, so there
//! is no serde to lean on).
//!
//! The writer appends primitives to a growable buffer; the reader walks the
//! same buffer and returns a structured [`SnapError`] — never a panic — on
//! truncated or corrupt input, so a damaged snapshot file fails closed.
//! Determinism contract: encoding the same logical state must produce the
//! same bytes, so callers serialize unordered containers (hash maps) in
//! sorted key order. Floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]), making the round-trip exact.

use std::fmt;

/// Decode failure: offset of the read that failed plus what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// Human-readable description of the expectation that was violated.
    pub what: String,
}

impl SnapError {
    pub fn new(at: usize, what: impl Into<String>) -> Self {
        SnapError {
            at,
            what: what.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot decode error at byte {}: {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for the snapshot byte format.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Lengths/counts travel as u64 so the format is pointer-width-free.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Exact float transport via the IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u32(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// Cursor-style decoder over a snapshot byte slice. Every read is bounds-
/// checked and returns `Err(SnapError)` on truncation; no method panics on
/// malformed input.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current read offset (for error context).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error constructor anchored at the current offset.
    pub fn err(&self, what: impl Into<String>) -> SnapError {
        SnapError::new(self.pos, what)
    }

    /// Fail unless the whole buffer was consumed (trailing garbage is as
    /// suspect as truncation).
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(self.pos - 1, format!("bad bool byte {b}"))),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Length field with a sanity cap: a corrupted length must not drive a
    /// multi-gigabyte allocation before the next read fails.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        if v > self.remaining() as u64 && v > (1 << 32) {
            return Err(SnapError::new(
                self.pos - 8,
                format!("implausible length {v}"),
            ));
        }
        Ok(v as usize)
    }

    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_len()?;
        self.take(n)
    }

    pub fn get_string(&mut self) -> Result<String, SnapError> {
        let at = self.pos;
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::new(at, "invalid utf-8 string"))
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            b => Err(SnapError::new(self.pos - 1, format!("bad option tag {b}"))),
        }
    }

    pub fn get_opt_u32(&mut self) -> Result<Option<u32>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u32()?)),
            b => Err(SnapError::new(self.pos - 1, format!("bad option tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.1);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_opt_u32(Some(4));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.get_string().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u32().unwrap(), Some(4));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(r.get_u64().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let bytes = [9u8];
        assert!(SnapReader::new(&bytes).get_bool().is_err());
        assert!(SnapReader::new(&bytes).get_opt_u64().is_err());
    }

    #[test]
    fn implausible_length_is_rejected_early() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX / 2); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        let mut bytes = w.into_bytes();
        bytes.push(0xFF);
        let mut r = SnapReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn float_transport_is_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let mut w = SnapWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let got = SnapReader::new(&bytes).get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }
}
