//! Grid and tournament search over a [`SearchSpace`].
//!
//! Both tuners reduce to the same deterministic kernel: materialise
//! every candidate into a `SimConfig` (wall-clock decision measurement
//! forced off — latencies must never leak into the artifact), evaluate
//! (candidate, seed) cells through [`hws_sim::par_map`] or a sequential
//! loop, and fold rewards in candidate/seed index order. Because the
//! fan-out returns results in index order regardless of thread
//! scheduling, `parallel == sequential` holds **bitwise**, and the
//! emitted [`Leaderboard`] text is byte-identical across runs of the
//! same (space, base, seeds).

use crate::leaderboard::{fnv1a, Leaderboard, LeaderboardRow};
use crate::space::{Candidate, SearchSpace};
use hws_core::{SimConfig, Simulator};
use hws_metrics::{ClassBreakdown, Metrics, RewardSpec};
use hws_sim::par_map;
use hws_workload::Trace;
use std::fmt::Write as _;

/// Grid-search configuration: every candidate is evaluated on every
/// seed.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    pub base: SimConfig,
    pub reward: RewardSpec,
    pub seeds: Vec<u64>,
    /// Fan cells across cores (bitwise identical to sequential).
    pub parallel: bool,
}

impl SearchConfig {
    pub fn new(base: SimConfig, reward: RewardSpec, seeds: Vec<u64>) -> Self {
        SearchConfig {
            base,
            reward,
            seeds,
            parallel: true,
        }
    }

    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// Tournament (successive-halving) configuration: round `r` evaluates
/// the surviving half on `seeds_per_round` fresh seeds
/// (`seed_base + r·seeds_per_round ..`), so later rounds spend their
/// budget on the strongest candidates only.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    pub base: SimConfig,
    pub reward: RewardSpec,
    pub rounds: usize,
    pub seeds_per_round: u64,
    pub seed_base: u64,
    /// Fan cells across cores (bitwise identical to sequential).
    pub parallel: bool,
}

impl TournamentConfig {
    pub fn new(base: SimConfig, reward: RewardSpec, rounds: usize, seeds_per_round: u64) -> Self {
        TournamentConfig {
            base,
            reward,
            rounds,
            seeds_per_round,
            seed_base: 0,
            parallel: true,
        }
    }

    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// The deterministic slice of one run the tuners keep.
struct Cell {
    metrics: Metrics,
    classes: Option<ClassBreakdown>,
}

/// Evaluate the `configs × seeds` grid; cell `i` is
/// `(configs[i / seeds.len()], seeds[i % seeds.len()])`, and the result
/// order is that index order for both execution modes.
fn eval_cells<F>(configs: &[SimConfig], seeds: &[u64], parallel: bool, make_trace: &F) -> Vec<Cell>
where
    F: Fn(u64) -> Trace + Sync,
{
    let n = configs.len() * seeds.len();
    let run = |i: usize| {
        let trace = make_trace(seeds[i % seeds.len()]);
        let out = Simulator::run_trace(&configs[i / seeds.len()], &trace);
        Cell {
            metrics: out.metrics,
            classes: out.classes,
        }
    };
    if parallel {
        par_map(n, run)
    } else {
        (0..n).map(run).collect()
    }
}

/// Materialise every candidate over `base`, with decision-latency
/// measurement forced off (wall-clock must never enter the artifact).
fn materialize(candidates: &[Candidate], base: &SimConfig) -> Result<Vec<SimConfig>, String> {
    candidates
        .iter()
        .map(|c| {
            let mut cfg = c
                .to_config(base)
                .map_err(|e| format!("{}: {e}", c.label()))?;
            cfg.measure_decisions = false;
            Ok(cfg)
        })
        .collect()
}

/// Per-candidate fold state: rewards and the metrics fingerprint
/// accumulator, both in evaluation order.
#[derive(Default)]
struct Tally {
    scores: Vec<f64>,
    debug: String,
}

impl Tally {
    fn absorb(&mut self, cells: &[Cell], reward: &RewardSpec) -> f64 {
        let start = self.scores.len();
        for cell in cells {
            self.scores
                .push(reward.score(&cell.metrics, cell.classes.as_ref()));
            writeln!(self.debug, "{:?}", cell.metrics).expect("string write");
        }
        let new = &self.scores[start..];
        new.iter().sum::<f64>() / new.len() as f64
    }

    fn mean(&self) -> f64 {
        if self.scores.is_empty() {
            f64::NEG_INFINITY
        } else {
            self.scores.iter().sum::<f64>() / self.scores.len() as f64
        }
    }
}

fn build_rows(
    kind: &str,
    reward: &RewardSpec,
    candidates: &[Candidate],
    tallies: Vec<Tally>,
    order: Vec<usize>,
) -> Leaderboard {
    let mut tallies: Vec<Option<Tally>> = tallies.into_iter().map(Some).collect();
    let rows = order
        .iter()
        .enumerate()
        .map(|(i, &ci)| {
            let tally = tallies[ci].take().expect("candidate ranked once");
            LeaderboardRow {
                rank: i + 1,
                mechanism: candidates[ci].mechanism.name().to_string(),
                knobs: candidates[ci].knobs.clone(),
                seeds: tally.scores.len(),
                mean_reward: tally.mean(),
                fingerprint: fnv1a(tally.debug.as_bytes()),
                scores: tally.scores,
            }
        })
        .collect();
    Leaderboard {
        search: kind.to_string(),
        reward: reward.describe(),
        rows,
    }
}

/// Exhaustive search: every candidate × every seed, ranked by mean
/// reward (ties broken by enumeration index, so the result is total).
pub fn grid_search<F>(
    space: &SearchSpace,
    cfg: &SearchConfig,
    make_trace: F,
) -> Result<Leaderboard, String>
where
    F: Fn(u64) -> Trace + Sync,
{
    space.validate()?;
    if cfg.seeds.is_empty() {
        return Err("grid search needs at least one seed".into());
    }
    let candidates = space.enumerate();
    let configs = materialize(&candidates, &cfg.base)?;
    let cells = eval_cells(&configs, &cfg.seeds, cfg.parallel, &make_trace);

    let per = cfg.seeds.len();
    let mut tallies: Vec<Tally> = (0..candidates.len()).map(|_| Tally::default()).collect();
    for (ci, tally) in tallies.iter_mut().enumerate() {
        tally.absorb(&cells[ci * per..(ci + 1) * per], &cfg.reward);
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        tallies[b]
            .mean()
            .total_cmp(&tallies[a].mean())
            .then(a.cmp(&b))
    });
    Ok(build_rows("grid", &cfg.reward, &candidates, tallies, order))
}

/// Successive halving: each round evaluates the survivors on fresh
/// seeds and keeps the better-scoring half (`⌈n/2⌉`, ties broken by
/// enumeration index). The final ranking orders all candidates by
/// (rounds survived, cumulative mean reward, enumeration index).
pub fn tournament_search<F>(
    space: &SearchSpace,
    cfg: &TournamentConfig,
    make_trace: F,
) -> Result<Leaderboard, String>
where
    F: Fn(u64) -> Trace + Sync,
{
    space.validate()?;
    if cfg.rounds == 0 {
        return Err("tournament needs at least one round".into());
    }
    if cfg.seeds_per_round == 0 {
        return Err("tournament needs at least one seed per round".into());
    }
    let candidates = space.enumerate();
    let configs = materialize(&candidates, &cfg.base)?;
    let n = candidates.len();

    let mut tallies: Vec<Tally> = (0..n).map(|_| Tally::default()).collect();
    let mut survived = vec![0usize; n];
    let mut alive: Vec<usize> = (0..n).collect();
    for round in 0..cfg.rounds {
        let seeds: Vec<u64> = (0..cfg.seeds_per_round)
            .map(|k| cfg.seed_base + round as u64 * cfg.seeds_per_round + k)
            .collect();
        let alive_configs: Vec<SimConfig> = alive.iter().map(|&ci| configs[ci].clone()).collect();
        let cells = eval_cells(&alive_configs, &seeds, cfg.parallel, &make_trace);

        let per = seeds.len();
        let mut round_mean = vec![0.0f64; alive.len()];
        for (ai, &ci) in alive.iter().enumerate() {
            round_mean[ai] = tallies[ci].absorb(&cells[ai * per..(ai + 1) * per], &cfg.reward);
            survived[ci] = round + 1;
        }
        if alive.len() > 1 {
            let mut order: Vec<usize> = (0..alive.len()).collect();
            order.sort_by(|&a, &b| {
                round_mean[b]
                    .total_cmp(&round_mean[a])
                    .then(alive[a].cmp(&alive[b]))
            });
            let keep = alive.len().div_ceil(2);
            let mut next: Vec<usize> = order[..keep].iter().map(|&ai| alive[ai]).collect();
            next.sort_unstable();
            alive = next;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        survived[b]
            .cmp(&survived[a])
            .then(tallies[b].mean().total_cmp(&tallies[a].mean()))
            .then(a.cmp(&b))
    });
    Ok(build_rows(
        "tournament",
        &cfg.reward,
        &candidates,
        tallies,
        order,
    ))
}
