//! Outage-aware measurement for capacity-fault runs.
//!
//! Like the per-shard breakdown ([`ShardStat`](crate::ShardStat)), this is
//! a **side channel**: a run with no outage schedule produces no
//! [`OutageReport`], so no-outage metrics stay bitwise-comparable against
//! builds that predate the outage engine. The driver accumulates the raw
//! counters while injecting the schedule and attaches the report to the
//! run outcome.

/// What capacity faults cost over one run. All fields are exact integers
/// accumulated by the driver; the derived rates are methods so the report
/// itself stays bitwise-comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutageReport {
    /// Schedule events applied (equals the schedule length after a full
    /// run).
    pub events_applied: u32,
    /// Node-down transitions performed (hard downs plus graceful drains
    /// that completed by emptying the node).
    pub nodes_down: u64,
    /// Graceful drain applications (a drained-but-occupied node leaves
    /// service later, through the release path, and is then counted in
    /// `lost_node_seconds` but not in `nodes_down`).
    pub nodes_drained: u64,
    /// Nodes returned to service by rejoin events.
    pub nodes_rejoined: u64,
    /// Running jobs evicted by hard downs (checkpoint-restart or
    /// setup-loss recovery; does not count shrink-aways).
    pub interrupted_jobs: u64,
    /// Malleable jobs that shrank away from a lost node instead of being
    /// evicted.
    pub shrunk_jobs: u64,
    /// Waiting jobs killed because the post-outage capacity horizon proved
    /// them permanently infeasible.
    pub infeasible_killed: u64,
    /// Node-seconds of capacity out of service (the integral of the down
    /// count over the run).
    pub lost_node_seconds: u128,
    /// Wall seconds during which at least one node was down (the union of
    /// all degraded windows).
    pub degraded_wall_seconds: u64,
    /// Evicted jobs that restarted, and their total eviction→restart
    /// latency.
    pub recoveries: u64,
    pub recovery_latency_seconds: u64,
}

impl OutageReport {
    /// Mean eviction→restart latency in seconds; 0 with no recoveries.
    pub fn mean_recovery_latency_secs(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_latency_seconds as f64 / self.recoveries as f64
        }
    }

    /// Utilization of the capacity that was actually *in service*:
    /// `occupied / (nodes × span − lost)`. Unlike the headline
    /// [`Metrics`](crate::Metrics) utilization (which divides by full
    /// capacity), this answers "how well did the scheduler use what it
    /// had" during degraded windows. 0 for an empty live capacity.
    pub fn live_utilization(&self, occupied_node_seconds: u128, nodes: u32, span_secs: u64) -> f64 {
        let cap = u128::from(nodes) * u128::from(span_secs);
        let live = cap.saturating_sub(self.lost_node_seconds);
        if live == 0 {
            0.0
        } else {
            occupied_node_seconds as f64 / live as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_recovery_latency() {
        let r = OutageReport {
            recoveries: 4,
            recovery_latency_seconds: 100,
            ..Default::default()
        };
        assert!((r.mean_recovery_latency_secs() - 25.0).abs() < 1e-12);
        assert_eq!(OutageReport::default().mean_recovery_latency_secs(), 0.0);
    }

    #[test]
    fn live_utilization_discounts_lost_capacity() {
        let r = OutageReport {
            lost_node_seconds: 500,
            ..Default::default()
        };
        // 10 nodes × 100 s = 1000 cap, 500 lost → 250 occupied is 50 %.
        assert!((r.live_utilization(250, 10, 100) - 0.5).abs() < 1e-12);
        // All capacity lost → 0, not a division by zero.
        let all = OutageReport {
            lost_node_seconds: 1_000,
            ..Default::default()
        };
        assert_eq!(all.live_utilization(250, 10, 100), 0.0);
    }
}
