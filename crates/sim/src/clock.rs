//! Clock abstraction separating *virtual* simulated time from optional
//! *wall-clock pacing*.
//!
//! The engine's primitive is `run_until(horizon)`: pop events in
//! `(time, seq)` order and deliver them. How fast those deliveries happen
//! in the real world is a policy the engine should not hard-code — batch
//! replay wants them as fast as the CPU allows, while a live service
//! shadowing real traffic wants virtual seconds mapped onto wall seconds.
//! [`Clock`] is that policy: the engine calls [`Clock::pace`] with the
//! event's virtual timestamp immediately before delivering it, and the
//! clock may block the calling thread until the corresponding wall instant.
//!
//! Pacing never changes *what* happens — event order, handler effects, and
//! metrics are identical under any clock. It only changes *when* the next
//! handler runs in wall time, so determinism proofs carry over unchanged.

use crate::time::SimTime;
use std::time::{Duration, Instant};

/// Delivery pacing policy consulted once per event, just before its handler
/// runs.
///
/// Implementations must not alter virtual time; they may only delay the
/// calling thread. The engine guarantees `at` is non-decreasing across
/// calls within one run.
pub trait Clock {
    /// Optionally block until the wall instant corresponding to virtual
    /// time `at`.
    fn pace(&mut self, at: SimTime);
}

/// Pure virtual time: never blocks. This is the default clock and the one
/// every batch experiment runs under.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    #[inline]
    fn pace(&mut self, _at: SimTime) {}
}

/// Wall-clock pacing: maps virtual seconds onto wall seconds at a fixed
/// `rate` (virtual seconds per wall second), anchored at the first paced
/// event.
///
/// `rate = 1.0` replays in real time; `rate = 60.0` compresses a minute of
/// simulated time into each wall second. The clock only ever sleeps — if
/// delivery falls behind the wall schedule it catches up at full speed
/// without trying to "repay" the deficit, so a slow handler never distorts
/// subsequent spacing.
#[derive(Debug, Clone)]
pub struct WallClock {
    /// Virtual seconds that elapse per wall-clock second.
    rate: f64,
    /// `(wall_anchor, virtual_anchor)` fixed at the first `pace` call.
    origin: Option<(Instant, SimTime)>,
}

impl WallClock {
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "wall-clock rate must be finite and positive, got {rate}"
        );
        WallClock { rate, origin: None }
    }

    /// Real-time pacing (one virtual second per wall second).
    pub fn realtime() -> Self {
        Self::new(1.0)
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Clock for WallClock {
    fn pace(&mut self, at: SimTime) {
        let (anchor, v0) = *self.origin.get_or_insert((Instant::now(), at));
        // `SimTime::MAX` is the "never" sentinel; treat it as unpaceable
        // rather than sleeping for eons.
        if at == SimTime::MAX {
            return;
        }
        let virt = at.since(v0).as_secs() as f64 / self.rate;
        let target = Duration::from_secs_f64(virt);
        let elapsed = anchor.elapsed();
        if let Some(wait) = target.checked_sub(elapsed) {
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_never_blocks() {
        let mut c = VirtualClock;
        let start = Instant::now();
        for t in 0..10_000u64 {
            c.pace(SimTime::from_secs(t * 3600));
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wall_clock_paces_relative_to_first_event() {
        // 1000 virtual seconds per wall second → 2 virtual seconds of
        // spacing should cost ~2ms of wall time.
        let mut c = WallClock::new(1000.0);
        let start = Instant::now();
        c.pace(SimTime::from_secs(500)); // anchors; no sleep
        c.pace(SimTime::from_secs(502));
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(2),
            "paced too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "paced too slow: {elapsed:?}"
        );
    }

    #[test]
    fn wall_clock_ignores_never_sentinel() {
        let mut c = WallClock::new(1.0);
        let start = Instant::now();
        c.pace(SimTime::from_secs(0));
        c.pace(SimTime::MAX);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_is_rejected() {
        WallClock::new(0.0);
    }
}
