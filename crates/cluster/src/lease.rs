//! Node leases (§III-B3 of the paper).
//!
//! When an on-demand job takes nodes from preempted or shrunk victims, each
//! taking is recorded as a [`Lease`]. On the on-demand job's completion the
//! ledger is drained **in recording order** and the nodes are offered back
//! to the lenders: a preempted lender that is still waiting accumulates them
//! as a private reservation (this is the source of the paper's Observation 2
//! starvation effect), a shrunk lender that is still running expands, and
//! anything else falls into the free pool.

use hws_workload::JobId;
use std::collections::HashMap;

/// `nodes` nodes borrowed from `lender`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    pub lender: JobId,
    pub nodes: u32,
    /// True when the lender was preempted (vs shrunk) to supply the nodes.
    pub by_preemption: bool,
}

/// Per-borrower lease book.
#[derive(Debug, Clone, Default)]
pub struct LeaseLedger {
    leases: HashMap<JobId, Vec<Lease>>,
}

impl LeaseLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `borrower` took `nodes` nodes from `lender`.
    /// Consecutive records against the same lender merge.
    pub fn record(&mut self, borrower: JobId, lender: JobId, nodes: u32, by_preemption: bool) {
        if nodes == 0 {
            return;
        }
        let v = self.leases.entry(borrower).or_default();
        if let Some(last) = v.last_mut() {
            if last.lender == lender && last.by_preemption == by_preemption {
                last.nodes += nodes;
                return;
            }
        }
        v.push(Lease {
            lender,
            nodes,
            by_preemption,
        });
    }

    /// Total nodes `borrower` currently owes.
    pub fn owed_by(&self, borrower: JobId) -> u32 {
        self.leases
            .get(&borrower)
            .map_or(0, |v| v.iter().map(|l| l.nodes).sum())
    }

    /// Remove and return `borrower`'s leases in recording order.
    pub fn settle(&mut self, borrower: JobId) -> Vec<Lease> {
        self.leases.remove(&borrower).unwrap_or_default()
    }

    /// Drop any lease entries naming `lender` (used when a lender finishes
    /// or resumes on its own and no longer wants its nodes back).
    pub fn forget_lender(&mut self, lender: JobId) {
        for v in self.leases.values_mut() {
            v.retain(|l| l.lender != lender);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.leases.values().all(|v| v.is_empty())
    }

    /// Number of borrowers with outstanding leases.
    pub fn borrowers(&self) -> usize {
        self.leases.values().filter(|v| !v.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn record_and_settle_in_order() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(9), j(2), 2, false);
        assert_eq!(l.owed_by(j(9)), 6);
        let leases = l.settle(j(9));
        assert_eq!(leases.len(), 2);
        assert_eq!(leases[0].lender, j(1));
        assert!(leases[0].by_preemption);
        assert_eq!(leases[1].lender, j(2));
        assert!(!leases[1].by_preemption);
        assert_eq!(l.owed_by(j(9)), 0);
        assert!(l.is_empty());
    }

    #[test]
    fn consecutive_records_merge() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 2, true);
        l.record(j(9), j(1), 3, true);
        let leases = l.settle(j(9));
        assert_eq!(
            leases,
            vec![Lease {
                lender: j(1),
                nodes: 5,
                by_preemption: true
            }]
        );
    }

    #[test]
    fn different_modes_do_not_merge() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 2, true);
        l.record(j(9), j(1), 3, false);
        assert_eq!(l.settle(j(9)).len(), 2);
    }

    #[test]
    fn zero_node_record_is_ignored() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 0, true);
        assert!(l.is_empty());
    }

    #[test]
    fn forget_lender_removes_entries() {
        let mut l = LeaseLedger::new();
        l.record(j(9), j(1), 4, true);
        l.record(j(9), j(2), 2, true);
        l.record(j(8), j(1), 1, false);
        l.forget_lender(j(1));
        assert_eq!(l.owed_by(j(9)), 2);
        assert_eq!(l.owed_by(j(8)), 0);
    }

    #[test]
    fn borrowers_count() {
        let mut l = LeaseLedger::new();
        assert_eq!(l.borrowers(), 0);
        l.record(j(9), j(1), 1, true);
        l.record(j(8), j(2), 1, true);
        assert_eq!(l.borrowers(), 2);
        l.settle(j(9));
        assert_eq!(l.borrowers(), 1);
    }
}
