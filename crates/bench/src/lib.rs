//! # hws-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! plumbing: the [`TraceSource`] abstraction (synthetic generator or SWF
//! replay), multi-seed parallel execution, and result aggregation. The
//! Criterion benches under `benches/` cover Observation 10 (decision
//! latency) and simulator/backfill throughput.
//!
//! Scale knobs (environment variables, so `cargo bench`/CI stay fast):
//!
//! * `HWS_SCALE=full` — run the full-year, 4,392-node Theta configuration
//!   (the paper's scale). Default is a calibrated 1/6-scale trace (2 months)
//!   that preserves system size, load, and burstiness.
//! * `HWS_SEEDS=n` — number of random traces per cell (paper: 10).
//! * `HWS_SWF=path` — replay a real SWF log instead of generating
//!   synthetic traces: every figure binary then imports the log once per
//!   seed (the seed drives the §IV-A class/notice assignment, mirroring
//!   the paper's "ten randomly generated traces" protocol). `HWS_SWF_PPN`
//!   sets processors per node for logs that count processors.

pub mod archive;

pub use archive::{
    archive_dir, archive_path, ensure_archive, peak_rss_bytes, reset_peak_rss, ArchiveProfile,
};

use hws_core::{Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::{Metrics, MetricsAvg};
use hws_sim::SimDuration;
use hws_workload::{import_swf_reader, NoticeMix, SwfImportConfig, Trace, TraceConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Experiment scale selected via `HWS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale: one year of Theta (37,298 jobs).
    Full,
    /// Default: two months at the same offered load (≈6,200 jobs).
    Standard,
    /// Quick smoke scale for CI (two weeks).
    Quick,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("HWS_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("quick") => Scale::Quick,
            _ => Scale::Standard,
        }
    }

    /// The Theta-shaped trace configuration at this scale.
    pub fn trace_config(self) -> TraceConfig {
        let base = TraceConfig::theta_2019();
        match self {
            Scale::Full => base,
            Scale::Standard => TraceConfig {
                horizon: SimDuration::from_days(61),
                target_jobs: 37_298 * 61 / 365,
                n_projects: 120,
                ..base
            },
            Scale::Quick => TraceConfig {
                horizon: SimDuration::from_days(14),
                target_jobs: 37_298 * 14 / 365,
                n_projects: 60,
                ..base
            },
        }
    }
}

/// Seeds per experiment cell (`HWS_SEEDS`, default 10 — "we repeat the same
/// experiment on ten randomly generated traces").
pub fn seeds_from_env() -> u64 {
    seeds_from_env_or(10)
}

/// `HWS_SEEDS` with a caller-chosen default, for binaries whose natural
/// seed count differs from the paper's 10 (the million-job archive replay
/// records 2).
pub fn seeds_from_env_or(default: u64) -> u64 {
    std::env::var("HWS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Where a figure binary gets its per-seed traces from: the calibrated
/// synthetic generator, or a real SWF archive log replayed through the
/// paper's §IV-A class-assignment protocol. Either way `make_trace(seed)`
/// is a pure function of the seed, so [`Simulator::run_sweep_with`] keeps
/// its bitwise-deterministic per-seed guarantee.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Generate a synthetic Theta-shaped trace per seed.
    Synthetic(TraceConfig),
    /// Stream-import an SWF file per seed; the seed overrides
    /// `cfg.seed`, varying the class/notice assignment across seeds.
    SwfFile { path: PathBuf, cfg: SwfImportConfig },
}

impl TraceSource {
    /// The `HWS_SWF`/`HWS_SWF_PPN` environment selection, when set. The
    /// single parser for those variables — every binary that honors them
    /// goes through here so they can never drift apart.
    pub fn swf_from_env() -> Option<TraceSource> {
        let path = std::env::var("HWS_SWF").ok().filter(|p| !p.is_empty())?;
        let ppn = std::env::var("HWS_SWF_PPN")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        Some(TraceSource::swf(
            path,
            SwfImportConfig {
                procs_per_node: ppn,
                ..SwfImportConfig::default()
            },
        ))
    }

    /// `HWS_SWF=path` selects SWF replay (with `HWS_SWF_PPN` processors
    /// per node); otherwise fall back to the synthetic `fallback` config.
    pub fn from_env_or(fallback: TraceConfig) -> TraceSource {
        Self::swf_from_env().unwrap_or(TraceSource::Synthetic(fallback))
    }

    /// The standard source of a figure binary: `HWS_SWF` replay when set,
    /// else the synthetic config at `scale`.
    pub fn from_env(scale: Scale) -> TraceSource {
        Self::from_env_or(scale.trace_config())
    }

    /// SWF replay of `path` with explicit import options.
    pub fn swf(path: impl Into<PathBuf>, cfg: SwfImportConfig) -> TraceSource {
        TraceSource::SwfFile {
            path: path.into(),
            cfg,
        }
    }

    /// Override the advance-notice accuracy mix (Table III workloads) in
    /// whichever configuration this source carries.
    pub fn with_notice_mix(mut self, mix: NoticeMix) -> TraceSource {
        match &mut self {
            TraceSource::Synthetic(cfg) => cfg.notice_mix = mix,
            TraceSource::SwfFile { cfg, .. } => cfg.notice_mix = mix,
        }
        self
    }

    /// Produce the trace for one seed. SWF files are re-streamed from disk
    /// per seed (a million-line log never has to fit in memory); panics on
    /// IO/parse errors, as the figure binaries have no fallback anyway.
    pub fn make_trace(&self, seed: u64) -> Trace {
        match self {
            TraceSource::Synthetic(cfg) => cfg.generate(seed),
            TraceSource::SwfFile { path, cfg } => {
                let file = std::fs::File::open(path)
                    .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
                let cfg = SwfImportConfig {
                    seed,
                    ..cfg.clone()
                };
                import_swf_reader(std::io::BufReader::new(file), &cfg)
                    .unwrap_or_else(|e| panic!("import {}: {e}", path.display()))
            }
        }
    }

    /// Doubling size buckets for Fig. 3-style histograms: derived from the
    /// synthetic config, or from the imported trace's smallest job.
    pub fn size_buckets(&self, trace: &Trace) -> Vec<(u32, u32)> {
        match self {
            TraceSource::Synthetic(cfg) => cfg.size_buckets(),
            TraceSource::SwfFile { .. } => {
                let min = trace.jobs.iter().map(|j| j.size).min().unwrap_or(1).max(1);
                let mut buckets = Vec::new();
                let mut lo = min;
                while buckets.len() < 4 && lo * 2 < trace.system_size {
                    buckets.push((lo, lo * 2));
                    lo *= 2;
                }
                buckets.push((lo, trace.system_size + 1));
                buckets
            }
        }
    }

    /// One-line description for the binaries' stderr banners.
    pub fn describe(&self) -> String {
        match self {
            TraceSource::Synthetic(cfg) => format!(
                "synthetic ({} jobs over {} days)",
                cfg.target_jobs,
                cfg.horizon.as_secs() / 86_400
            ),
            TraceSource::SwfFile { path, .. } => format!("SWF replay of {}", path.display()),
        }
    }
}

/// Run `cfg` over `seeds` traces drawn from `source` in parallel and
/// average the metrics (the paper's averaging protocol). Routed through
/// [`Simulator::run_sweep_with`], which fans the seeds across CPU cores
/// while keeping every per-seed result bitwise identical to a sequential
/// run.
pub fn run_averaged_source(sim_cfg: &SimConfig, source: &TraceSource, seeds: u64) -> Metrics {
    assert!(seeds > 0);
    let seed_list: Vec<u64> = (0..seeds).collect();
    let outcomes = Simulator::run_sweep_with(sim_cfg, &seed_list, |s| source.make_trace(s));
    let mut avg = MetricsAvg::new();
    for outcome in &outcomes {
        avg.push(&outcome.metrics);
    }
    avg.mean()
}

/// Synthetic-only convenience wrapper kept for callers that hold a
/// [`TraceConfig`] (examples, tests).
pub fn run_averaged(sim_cfg: &SimConfig, trace_cfg: &TraceConfig, seeds: u64) -> Metrics {
    run_averaged_source(sim_cfg, &TraceSource::Synthetic(trace_cfg.clone()), seeds)
}

/// Run every (mechanism × workload) cell of Fig. 6 and return
/// `(workload name, mechanism, averaged metrics)` rows.
pub fn run_fig6_grid(
    source: &TraceSource,
    seeds: u64,
    mechanisms: &[Mechanism],
) -> Vec<(&'static str, Mechanism, Metrics)> {
    let mut rows = Vec::new();
    for (wname, mix) in NoticeMix::TABLE3 {
        let wsource = source.clone().with_notice_mix(mix);
        for &m in mechanisms {
            let scfg = SimConfig::with_mechanism(m);
            rows.push((wname, m, run_averaged_source(&scfg, &wsource, seeds)));
        }
    }
    rows
}

/// FNV-1a over arbitrary bytes; the workspace's standard cheap stable
/// hash for behavioral fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the `Debug` rendering of every per-seed metrics struct: an
/// exact behavioral fingerprint (f64 `Debug` is round-trip), stable across
/// runs and Rust versions. Committed inside the `BENCH_*.json` baselines
/// so any change to *any* metric bit shows up as a fingerprint drift in
/// the CI `baseline-parity` gate.
pub fn metrics_fingerprint(outcomes: &[SimOutcome]) -> u64 {
    let mut dbg = String::new();
    for o in outcomes {
        let _ = write!(dbg, "{:?}", o.metrics);
    }
    fnv1a(dbg.as_bytes())
}

/// The bundled SWF replay fixture: a plain-SWF export of the quick-scale
/// Theta-shaped trace at seed 42 (see `--bin make_swf_fixture`, which
/// regenerates it, and DESIGN.md §8 for provenance).
pub fn bundled_swf_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("data/theta_quick.swf")
}

/// The generator settings behind [`bundled_swf_fixture`]; fixed so the
/// fixture is reproducible regardless of `HWS_SCALE`.
pub fn swf_fixture_trace_config() -> TraceConfig {
    Scale::Quick.trace_config()
}

/// Seed of the bundled fixture.
pub const SWF_FIXTURE_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;
    use hws_workload::JobKind;

    #[test]
    fn scale_from_env_defaults_to_standard() {
        // (Environment is not set in the test harness.)
        if std::env::var("HWS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Standard);
        }
    }

    #[test]
    fn scaled_configs_preserve_system_size() {
        for s in [Scale::Full, Scale::Standard, Scale::Quick] {
            let c = s.trace_config();
            assert_eq!(c.system_size, 4_392);
            assert!(c.target_jobs > 100);
        }
    }

    #[test]
    fn run_averaged_is_deterministic() {
        let tcfg = TraceConfig::tiny();
        let scfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
        let a = run_averaged(&scfg, &tcfg, 2);
        let b = run_averaged(&scfg, &tcfg, 2);
        assert!((a.avg_turnaround_h - b.avg_turnaround_h).abs() < 1e-12);
        assert!((a.utilization - b.utilization).abs() < 1e-12);
    }

    #[test]
    fn trace_source_without_env_is_synthetic() {
        if std::env::var("HWS_SWF").is_err() {
            assert!(matches!(
                TraceSource::from_env(Scale::Quick),
                TraceSource::Synthetic(_)
            ));
        }
    }

    #[test]
    fn swf_source_traces_vary_by_seed_but_are_deterministic() {
        let src = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
        let a = src.make_trace(1);
        let b = src.make_trace(1);
        let c = src.make_trace(2);
        assert_eq!(a, b);
        // Same raw jobs, different class assignment.
        assert_eq!(a.len(), c.len());
        assert_ne!(a, c);
        assert!(a.validate().is_ok());
        assert!(a.count_kind(JobKind::OnDemand) > 0);
    }

    #[test]
    fn bundled_fixture_matches_its_generator_provenance() {
        // The committed fixture must be exactly what `make_swf_fixture`
        // writes: the plain-SWF export of the quick-scale trace at the
        // fixture seed. Regenerate with
        // `cargo run -p hws-bench --bin make_swf_fixture` if this fails.
        let expected = hws_workload::to_swf(
            &swf_fixture_trace_config().generate(SWF_FIXTURE_SEED),
            &hws_workload::SwfExportConfig {
                embed_classes: false,
                procs_per_node: 1,
            },
        );
        let on_disk = std::fs::read_to_string(bundled_swf_fixture()).expect("fixture present");
        assert_eq!(on_disk, expected, "fixture out of date");
    }

    #[test]
    fn swf_sweep_matches_sequential_bitwise() {
        // The swf_replay acceptance bar, at test scale: parallel sweeping
        // over the imported fixture must not perturb any per-seed metric.
        let src = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
        cfg.measure_decisions = false;
        let seeds = [0u64, 1];
        let swept = Simulator::run_sweep_with(&cfg, &seeds, |s| src.make_trace(s));
        for (out, &seed) in swept.iter().zip(&seeds) {
            let sequential = Simulator::run_trace(&cfg, &src.make_trace(seed));
            assert_eq!(out.metrics, sequential.metrics, "seed {seed}");
            assert_eq!(out.engine, sequential.engine, "seed {seed}");
        }
    }

    #[test]
    fn fixture_streams_identically_to_materialized() {
        // The streaming-replay contract on the *bundled* corpus rather
        // than a generated one: import the plain fixture (which runs the
        // §IV-A class protocol), re-export it embedded, stream it back,
        // and require the bitwise outcome of the materialized replay.
        let src = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
        let trace = src.make_trace(0);
        let swf = hws_workload::to_swf(&trace, &hws_workload::SwfExportConfig::default());
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
        cfg.measure_decisions = false;
        let materialized = Simulator::run_trace(&cfg, &trace);
        let streamed = Simulator::run_source(
            &cfg,
            hws_workload::SwfStreamSource::from_reader(swf.as_bytes()).expect("own export"),
        );
        assert_eq!(materialized.metrics, streamed.metrics);
        assert_eq!(materialized.engine, streamed.engine);
        assert_eq!(streamed.admitted_jobs, trace.len() as u64);
    }

    #[test]
    fn notice_mix_override_applies_to_both_variants() {
        let syn = TraceSource::Synthetic(TraceConfig::tiny()).with_notice_mix(NoticeMix::W2);
        match syn {
            TraceSource::Synthetic(cfg) => assert_eq!(cfg.notice_mix, NoticeMix::W2),
            _ => unreachable!(),
        }
        let swf = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default())
            .with_notice_mix(NoticeMix::W3);
        match swf {
            TraceSource::SwfFile { cfg, .. } => assert_eq!(cfg.notice_mix, NoticeMix::W3),
            _ => unreachable!(),
        }
    }
}
