//! Outage injection: applying an [`OutageSchedule`] through the event
//! queue, recovery choreography for evicted residents, and degraded-mode
//! bookkeeping.
//!
//! ## Determinism
//!
//! The schedule is data ([`SimConfig::outages`]); [`seed_outages`] puts
//! exactly one [`Ev::Outage`] on the queue at run start and each handler
//! chains the next, so outage injection rides the same deterministic
//! dispatch order as every other event — replays, snapshots, and what-if
//! forks reproduce bitwise. With no schedule, [`SimCore::outage`] is
//! `None` and every hook below is a no-op behind one `Option` check: the
//! outage-free path stays bitwise identical to builds predating the
//! engine.
//!
//! ## Recovery semantics (one line per resident kind)
//!
//! * rigid / on-demand, running → checkpoint-restart via
//!   [`SimCore::fail_job`] (on-demand re-enters at the queue front);
//! * malleable, running, above `min_size` → targeted shrink-away from the
//!   lost node (no eviction, one node of progress-free loss);
//! * malleable, running, at `min_size` → setup-loss restart (also
//!   [`SimCore::fail_job`]);
//! * malleable, draining → the interrupted warning window is waste; the
//!   job resubmits immediately;
//! * idle reserved node → pulled from its holder's reservation; a
//!   notice-phase holder re-registers its collector.
//!
//! [`OutageSchedule`]: hws_workload::OutageSchedule
//! [`SimConfig::outages`]: crate::config::SimConfig::outages

use super::alloc::Claim;
use super::core::SimCore;
use super::events::Ev;
use crate::jobstate::Status;
use crate::timeline::TimelineEvent;
use hws_cluster::{ClusterBackend, NodeId, NodeState};
use hws_metrics::OutageReport;
use hws_sim::{Engine, EventQueue, SimTime};
use hws_workload::{JobId, JobKind, OutageKind};
use std::collections::BTreeMap;

/// Mutable outage bookkeeping, present exactly when the run carries a
/// schedule. Lost capacity is accounted as an exact integral: the down
/// count only changes inside event dispatch, so accruing
/// `down × Δt` at every event entry ([`SimCore::accrue_outage`]) sums the
/// true step function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct OutageState {
    /// Schedule events applied so far (the injection chain's cursor is
    /// carried by the queued [`Ev::Outage`] itself; this drives the
    /// horizon test and the report).
    pub(super) applied: u32,
    pub(super) downs: u64,
    pub(super) drains: u64,
    pub(super) rejoins: u64,
    pub(super) interrupted_jobs: u64,
    pub(super) shrunk_jobs: u64,
    pub(super) infeasible_killed: u64,
    pub(super) lost_node_seconds: u128,
    pub(super) degraded_wall_seconds: u64,
    pub(super) last_accrual: SimTime,
    /// Jobs evicted by a hard down and not yet restarted; drives the
    /// recovery-latency metric. Entries clear on restart
    /// ([`SimCore::note_outage_recovery`]) or retirement (cancel, sweep).
    pub(super) evicted_at: BTreeMap<JobId, SimTime>,
    pub(super) recoveries: u64,
    pub(super) recovery_latency_total: u64,
}

impl Default for OutageState {
    fn default() -> Self {
        OutageState {
            applied: 0,
            downs: 0,
            drains: 0,
            rejoins: 0,
            interrupted_jobs: 0,
            shrunk_jobs: 0,
            infeasible_killed: 0,
            lost_node_seconds: 0,
            degraded_wall_seconds: 0,
            last_accrual: SimTime::ZERO,
            evicted_at: BTreeMap::new(),
            recoveries: 0,
            recovery_latency_total: 0,
        }
    }
}

/// Validate the configured schedule against the backend's shape and queue
/// the first injection event. Called once per fresh engine (batch run or
/// service session) — never on restore, where the pending chain rides the
/// queue snapshot.
///
/// # Panics
///
/// A schedule event addressing a shard or node the backend does not have.
pub(super) fn seed_outages<B: ClusterBackend>(engine: &mut Engine<SimCore<B>>) {
    let Some(schedule) = engine.sim.cfg.outages.as_ref() else {
        return;
    };
    let cluster = &engine.sim.cluster;
    for (i, e) in schedule.events().iter().enumerate() {
        let shard = e.shard as usize;
        assert!(
            shard < cluster.shard_count(),
            "outage event {i} addresses shard {shard}; backend has {} shard(s)",
            cluster.shard_count()
        );
        if let Some(n) = e.node {
            assert!(
                n < cluster.shard_nodes(shard),
                "outage event {i} addresses node {n} of shard {shard} ({} nodes)",
                cluster.shard_nodes(shard)
            );
        }
    }
    if let Some(first) = schedule.events().first() {
        let at = first.at;
        engine.queue.schedule(at, Ev::Outage { idx: 0 });
    }
}

impl<B: ClusterBackend> SimCore<B> {
    /// Accrue lost capacity up to `now`. Called at the entry of every
    /// event dispatch (and before service admin capacity changes), which
    /// makes the integral exact — the down count is constant between
    /// accrual points.
    pub(super) fn accrue_outage(&mut self, now: SimTime) {
        if self.outage.is_none() {
            return;
        }
        let down = self.cluster.down_nodes();
        let o = self.outage.as_mut().expect("just checked");
        let dt = now.since(o.last_accrual).as_secs();
        if dt > 0 {
            o.lost_node_seconds += u128::from(down) * u128::from(dt);
            if down > 0 {
                o.degraded_wall_seconds += dt;
            }
            o.last_accrual = now;
        }
    }

    /// Whether every scheduled outage event has been applied: after this
    /// point no rejoin is coming, so capacity lost now is lost for good
    /// and oversized waiting jobs are provably infeasible.
    pub(super) fn outage_horizon_passed(&self) -> bool {
        match (&self.outage, &self.cfg.outages) {
            (Some(o), Some(s)) => o.applied as usize == s.len(),
            _ => false,
        }
    }

    /// An evicted job restarted: close its recovery-latency window.
    pub(super) fn note_outage_recovery(&mut self, j: JobId, now: SimTime) {
        if let Some(o) = self.outage.as_mut() {
            if let Some(t) = o.evicted_at.remove(&j) {
                o.recovery_latency_total += now.since(t).as_secs();
                o.recoveries += 1;
            }
        }
    }

    /// The run's outage report, present once any schedule event applied
    /// (an empty or not-yet-started schedule reports nothing, keeping
    /// no-outage outcomes structurally identical to outage-free builds).
    pub fn outage_report(&self) -> Option<OutageReport> {
        let o = self.outage.as_ref()?;
        if o.applied == 0 {
            return None;
        }
        Some(OutageReport {
            events_applied: o.applied,
            nodes_down: o.downs,
            nodes_drained: o.drains,
            nodes_rejoined: o.rejoins,
            interrupted_jobs: o.interrupted_jobs,
            shrunk_jobs: o.shrunk_jobs,
            infeasible_killed: o.infeasible_killed,
            lost_node_seconds: o.lost_node_seconds,
            degraded_wall_seconds: o.degraded_wall_seconds,
            recoveries: o.recoveries,
            recovery_latency_seconds: o.recovery_latency_total,
        })
    }

    /// Apply schedule event `idx` and chain the next one. Dispatched from
    /// [`Ev::Outage`].
    pub(super) fn apply_outage(&mut self, idx: u32, now: SimTime, q: &mut EventQueue<Ev>) {
        let (ev, next_at) = {
            let s = self
                .cfg
                .outages
                .as_ref()
                .expect("Ev::Outage without a schedule");
            (
                s.events()[idx as usize],
                s.events().get(idx as usize + 1).map(|e| e.at),
            )
        };
        debug_assert_eq!(ev.at, now, "outage event fired off schedule");
        let shard = ev.shard as usize;
        let targets = match ev.node {
            Some(n) => n..n + 1,
            None => 0..self.cluster.shard_nodes(shard),
        };
        match ev.kind {
            OutageKind::Drain => {
                for n in targets {
                    let id = NodeId(n);
                    match self.cluster.node_state(shard, id) {
                        Some(NodeState::Down) | None => {}
                        _ => {
                            let went_down = self.cluster.drain_node(shard, id);
                            let o = self.outage.as_mut().expect("outage run");
                            o.drains += 1;
                            if went_down {
                                o.downs += 1;
                            }
                        }
                    }
                }
            }
            OutageKind::Rejoin => {
                for n in targets {
                    let id = NodeId(n);
                    let was_down = self.cluster.node_state(shard, id) == Some(NodeState::Down);
                    if self.cluster.rejoin_node(shard, id) && was_down {
                        self.outage.as_mut().expect("outage run").rejoins += 1;
                    }
                }
            }
            OutageKind::Down => {
                for n in targets {
                    self.outage_down_node(shard, NodeId(n), now, q);
                }
            }
        }
        self.outage.as_mut().expect("outage run").applied += 1;
        if self.outage_horizon_passed() {
            self.sweep_infeasible(now, q);
        }
        if let Some(at) = next_at {
            q.schedule(at, Ev::Outage { idx: idx + 1 });
        }
        self.offer_free_nodes(now);
        self.request_pass(now, q);
    }

    /// Hard-down one node, evicting or shrinking away any resident. A
    /// whole-shard sweep self-heals: an evicted job's *other* nodes land
    /// in the free pool and later iterations take them down as free
    /// nodes.
    fn outage_down_node(&mut self, shard: usize, id: NodeId, now: SimTime, q: &mut EventQueue<Ev>) {
        let Some(state) = self.cluster.node_state(shard, id) else {
            return;
        };
        match state {
            NodeState::Down => {}
            NodeState::Free => {
                let went_down = self.cluster.drain_node(shard, id);
                debug_assert!(went_down, "free node downs immediately");
                self.outage.as_mut().expect("outage run").downs += 1;
            }
            NodeState::Reserved { holder } => {
                self.cluster.down_reserved_node(shard, holder, id);
                self.outage.as_mut().expect("outage run").downs += 1;
                self.reclaim_after_reservation_loss(holder);
            }
            NodeState::Busy { job } | NodeState::ReservedBusy { job, .. } => {
                let holder = match state {
                    NodeState::ReservedBusy { holder, .. } => Some(holder),
                    _ => None,
                };
                // Mark first: the node then converts to Down inside the
                // release choke instead of re-entering the free pool.
                self.cluster.drain_node(shard, id);
                self.evict_from_node(job, id, now, q);
                self.outage.as_mut().expect("outage run").downs += 1;
                if let Some(h) = holder {
                    self.reclaim_after_reservation_loss(h);
                }
            }
        }
    }

    /// A notice-phase holder lost a reserved node to an outage; if its
    /// collector was already satisfied (and therefore dropped), re-insert
    /// it so the holder collects a replacement. Arrived holders keep
    /// phase-0 claims until launch, so they never need this.
    fn reclaim_after_reservation_loss(&mut self, holder: JobId) {
        if self.noticed.contains(&holder) && !self.claims.iter().any(|c| c.od == holder) {
            let spec = self.spec(holder);
            let since = spec
                .notice
                .as_ref()
                .expect("noticed job has a notice")
                .notice_time;
            let target = spec.size;
            self.insert_claim(Claim {
                od: holder,
                target,
                phase: 1,
                since,
            });
        }
    }

    /// Evict (or shrink away) the resident of a failing node.
    fn evict_from_node(&mut self, job: JobId, id: NodeId, now: SimTime, q: &mut EventQueue<Ev>) {
        let status = self.st(job).status;
        match status {
            Status::Running => {
                let spec = self.spec(job);
                let cur = self.st(job).cur_size;
                if spec.kind == JobKind::Malleable && cur > spec.min_size && cur > 1 {
                    self.shrink_away(job, id, now, q);
                } else {
                    self.fail_job(job, now, q);
                    self.note_eviction(job, now);
                }
            }
            Status::Draining => {
                self.interrupt_drain(job, now);
                self.note_eviction(job, now);
            }
            other => unreachable!("node-resident job {job} in state {other:?}"),
        }
    }

    fn note_eviction(&mut self, job: JobId, now: SimTime) {
        let o = self.outage.as_mut().expect("outage run");
        o.interrupted_jobs += 1;
        o.evicted_at.insert(job, now);
    }

    /// Targeted malleable shrink: drop exactly the failing node and keep
    /// running — [`SimCore::shrink_job`] with node-precise release.
    fn shrink_away(&mut self, j: JobId, id: NodeId, now: SimTime, q: &mut EventQueue<Ev>) {
        self.accrue_occupancy(j, now);
        self.accrue_malleable(j, now);
        self.cluster.release_single_node(j, id);
        let st = self.st_mut(j);
        st.cur_size -= 1;
        st.owed_expansion += 1;
        let epoch = st.bump_epoch();
        let remaining_ns = st.remaining_ns;
        let run = st.run.as_mut().expect("running");
        run.size -= 1;
        let at = crate::jobstate::malleable_finish(run, remaining_ns);
        let (from, to) = (run.size + 1, run.size);
        self.rec.job_shrunk(j);
        q.schedule(at.max(now), Ev::Finish { job: j, epoch });
        self.log(now, j, TimelineEvent::Shrunk { from, to });
        self.schedule_failure(j, now, q);
        self.outage.as_mut().expect("outage run").shrunk_jobs += 1;
    }

    /// A hard down struck a malleable job mid-warning: the elapsed drain
    /// window is pure waste (occupied, zero progress) and the job
    /// resubmits immediately instead of at drain end. Its pending
    /// `DrainEnd` dies against the epoch bump.
    fn interrupt_drain(&mut self, j: JobId, now: SimTime) {
        let full_size = self.spec(j).size;
        self.accrue_occupancy(j, now);
        self.rec.job_failed(j);
        self.log(now, j, TimelineEvent::Failed);
        let warning = self.cfg.malleable_warning;
        let st = self.st_mut(j);
        let until = st.drain_until.take().expect("draining job has a deadline");
        let run = st.run.take().expect("draining holds a run");
        st.status = Status::Waiting;
        st.cur_size = full_size;
        st.bump_epoch();
        let elapsed = warning - until.since(now);
        if !elapsed.is_zero() {
            self.rec.add_waste(run.size, elapsed);
        }
        self.cluster.release(j);
        self.enqueue_waiting(j);
    }

    /// The horizon has passed: any waiting job larger than the biggest
    /// live shard can never start. Kill them now (degraded-mode contract:
    /// block while rejoins may come, die only once infeasibility is
    /// proven).
    pub(super) fn sweep_infeasible(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        let cap = self.cluster.live_max_job_size();
        let doomed: Vec<JobId> = self
            .queue
            .ids()
            .filter(|&j| self.spec(j).size > cap)
            .collect();
        if doomed.is_empty() {
            return;
        }
        for j in doomed {
            // Unindex under the exact current key — before the od_front
            // flip below would change the job's key class.
            self.dequeue_waiting(j);
            self.od_front.remove(&j);
            self.remove_claim(j);
            self.squattable.remove(&j);
            self.noticed.remove(&j);
            if let Some(ev) = self.timeout_ev.remove(&j) {
                q.cancel(ev);
            }
            if let Some(evs) = self.cup_plans.remove(&j) {
                for ev in evs {
                    q.cancel(ev);
                }
            }
            self.cluster.release_reservation(j);
            self.st_mut(j).status = Status::Killed;
            self.rec.job_killed(j, now);
            self.log(now, j, TimelineEvent::Killed);
            self.outage.as_mut().expect("outage run").infeasible_killed += 1;
            self.retire(j);
        }
        self.offer_free_nodes(now);
    }
}
