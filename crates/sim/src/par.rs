//! Deterministic fan-out: run an index-addressed batch of independent
//! tasks across CPU cores and return the results **in index order**.
//!
//! This is the slot pattern behind `Simulator::run_sweep*` and the
//! `hws-search` tuners: a work-stealing counter hands indices to scoped
//! worker threads, each result lands in its own pre-allocated slot, and
//! the collected output is ordered by index — so the result vector is
//! independent of thread scheduling, and any fold over it in index order
//! is bitwise identical to a sequential loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluate `f(0..n)` across up to `available_parallelism()` scoped
/// threads; returns `[f(0), f(1), …, f(n-1)]` in index order regardless
/// of which thread ran what.
///
/// `f` must be a pure function of its index for the determinism claim to
/// mean anything — the fan-out itself never reorders results.
///
/// # Panics
///
/// Panics (poisoned slot) if `f` panics on a worker thread.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("par_map slot") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map slot")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch() {
        let out: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_index_order() {
        let out = par_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn matches_sequential_map() {
        let seq: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let par = par_map(64, |i| (i as u64).wrapping_mul(0x9e37_79b9));
        assert_eq!(seq, par);
    }
}
