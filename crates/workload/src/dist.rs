//! Statistical distributions for the trace generator, implemented from
//! scratch on top of `rand`'s uniform source (DESIGN.md §5: no extra
//! dependency for distributions).
//!
//! * [`LogNormal`] — Box–Muller transform; models job runtimes.
//! * [`TruncatedLogNormal`] — rejection with a clamp fallback, for the
//!   1-day runtime cap of Theta (Table I).
//! * [`Zipf`] — inverse-CDF sampling over a precomputed table; models
//!   heavy-tailed project activity.
//! * [`Exponential`] — inverse CDF; models within-burst submission gaps.
//! * [`weighted_index`] — discrete choice over `f64` weights (size buckets).

use rand::Rng;

/// Standard normal via the Box–Muller transform. Stateless: draws two
/// uniforms and discards the second variate, trading a little throughput for
/// simplicity (trace generation is not a hot path).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the *log-space* parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && mu.is_finite() && sigma.is_finite());
        LogNormal { mu, sigma }
    }

    /// Construct from the desired *median* (`exp(mu)`) and log-space sigma —
    /// a more intuitive parameterisation for runtimes.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        Self::new(median.ln(), sigma)
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Analytic mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Log-normal restricted to `[lo, hi]`: rejection-sample a few times, then
/// clamp. The clamp keeps sampling total (no unbounded loop) while the
/// retries keep the boundary atoms small.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedLogNormal {
    pub inner: LogNormal,
    pub lo: f64,
    pub hi: f64,
}

impl TruncatedLogNormal {
    pub fn new(inner: LogNormal, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "bad truncation bounds [{lo}, {hi}]");
        TruncatedLogNormal { inner, lo, hi }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        const RETRIES: u32 = 16;
        for _ in 0..RETRIES {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Sampling is a binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (0-based).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Exponential distribution with the given mean, via inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    pub mean: f64,
}

impl Exponential {
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0);
        Exponential { mean }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

/// Sample an index from non-negative weights. Linear scan — the weight
/// vectors here have a handful of entries.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    let mut u = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut r);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let d = LogNormal::new(8.0, 0.5);
        let mut r = rng();
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        let rel = (emp - d.mean()).abs() / d.mean();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn lognormal_from_median() {
        let d = LogNormal::from_median(7_200.0, 1.0);
        assert!((d.mu - 7_200.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn truncated_lognormal_respects_bounds() {
        let d = TruncatedLogNormal::new(LogNormal::new(8.0, 2.0), 600.0, 86_400.0);
        let mut r = rng();
        for _ in 0..50_000 {
            let x = d.sample(&mut r);
            assert!((600.0..=86_400.0).contains(&x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "bad truncation bounds")]
    fn truncated_lognormal_rejects_inverted_bounds() {
        TruncatedLogNormal::new(LogNormal::new(0.0, 1.0), 10.0, 5.0);
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let z = Zipf::new(100, 1.4);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 should dominate rank 9 by roughly 10^1.4 ≈ 25x.
        assert!(counts[0] > counts[9] * 10);
        // Empirical frequency of rank 0 tracks the pmf.
        let emp = counts[0] as f64 / n as f64;
        assert!((emp - z.pmf(0)).abs() < 0.01, "emp {emp} pmf {}", z.pmf(0));
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(211, 1.4);
        let total: f64 = (0..z.len()).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(300.0);
        let mut r = rng();
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((emp - 300.0).abs() / 300.0 < 0.02, "{emp}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let w = [1.0, 3.0, 6.0];
        let mut r = rng();
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_index(&w, &mut r)] += 1;
        }
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.02);
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.02);
    }

    #[test]
    fn weighted_index_single_bucket() {
        let mut r = rng();
        assert_eq!(weighted_index(&[5.0], &mut r), 0);
    }

    #[test]
    fn determinism_across_seeds() {
        let d = LogNormal::new(5.0, 1.0);
        let sample = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..10).map(|_| d.sample(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }
}
